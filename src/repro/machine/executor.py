"""Execution semantics of the SymPLFIED machine.

Two interpreters live here:

* :class:`Executor` — the full symbolic semantics.  ``step`` maps one machine
  state to the *list* of its successor states: deterministic instructions
  yield exactly one successor, while instructions whose outcome depends on an
  ``err`` value (comparisons, branches, loads/stores through a corrupted
  pointer, jumps through a corrupted target, division by a corrupted value)
  yield one successor per feasible resolution, with the constraint map
  updated so that later comparisons over the same location stay consistent.
  This is the Python rendition of the paper's Maude equations (deterministic
  machine model) plus rewrite rules (non-deterministic error model).

* :func:`concrete_step` / :func:`run_concrete` — a lean, mutating
  interpreter for fully concrete states.  It implements the same machine
  semantics without any symbolic machinery and is used for the deterministic
  prefix before an injection point and by the SimpleScalar-substitute
  simulator in :mod:`repro.concrete`.

Both interpreters run off the pre-decoded tables built by
:mod:`repro.machine.decode`: operands, comparison operators, binary-operator
implementations and branch targets are resolved once per program, so the hot
loop does no string work.  The original string-dispatch implementations are
kept verbatim — ``ExecutionConfig(legacy_dispatch=True)`` for the symbolic
executor, :func:`concrete_step_legacy` / :func:`run_concrete_legacy` for the
concrete one — as the semantic reference for the decode-equivalence tests
and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from ..constraints import ComparisonOp, Location
from ..detectors import DetectorSet, EMPTY_DETECTORS, execute_detector
from ..errors.comparison import resolve_comparison
from ..errors.propagation import (IMMEDIATE_ALIASES, NonDeterministicOperation,
                                  concrete_binary, symbolic_binary)
from ..isa.instructions import (Category, Instruction,
                                RETURN_ADDRESS_REGISTER, ZERO_REGISTER,
                                compare_base_opcode)
from ..isa.program import Program
from ..isa.values import ERR, Value, is_err
from .decode import DecodedInstruction, DecodedProgram, decoded_program
from .exceptions import (DIVIDE_BY_ZERO, ILLEGAL_ADDRESS, ILLEGAL_INSTRUCTION,
                         INPUT_EXHAUSTED, MachineModelError,
                         SymbolicValueEncountered, TIMED_OUT,
                         detector_exception)
from .state import MachineState, TraceEntry

__all__ = [
    "ExecutionConfig", "Executor", "SymbolicValueEncountered", "apply_fault",
    "apply_fault_set", "concrete_step", "concrete_step_legacy",
    "run_concrete", "run_concrete_legacy", "run_concrete_until",
]


#: Comparison operator implemented by each comparison-setter opcode.
_COMPARE_OPS: Dict[str, ComparisonOp] = {
    "seteq": ComparisonOp.EQ, "setne": ComparisonOp.NE,
    "setgt": ComparisonOp.GT, "setlt": ComparisonOp.LT,
    "setge": ComparisonOp.GE, "setle": ComparisonOp.LE,
}


@dataclass
class ExecutionConfig:
    """Tunable parameters of the symbolic execution and error semantics.

    Attributes:
        max_steps: watchdog bound on executed instructions (paper Section 5.4);
            exceeding it marks the state as ``TIMEOUT`` (a hang).
        control_fork_domain: where an erroneous jump/branch target or PC may
            land — ``"labels"`` (label addresses only), ``"targets"``
            (statically plausible control-transfer targets), ``"all"`` (every
            valid code address, the paper's literal semantics) or
            ``"exception_only"`` (only the illegal-instruction outcome).
        max_control_forks: cap on the number of forked landing sites.
        memory_fork_domain: where an erroneous load/store address may point —
            ``"known"`` (currently defined memory words) or
            ``"exception_only"``.
        max_memory_forks: cap on the number of forked memory locations.
        prune_unsatisfiable: whether the constraint solver prunes infeasible
            branches (turning this off is the paper's implicit baseline and is
            exercised by the ablation benchmark).
        record_trace: whether to append a human-readable trace entry per step.
        legacy_dispatch: run the original string-dispatch handlers instead of
            the pre-decoded dispatch table.  Test-only flag kept for the
            decode-equivalence suite and legacy-vs-decoded benchmarks.
    """

    max_steps: int = 20_000
    control_fork_domain: str = "labels"
    max_control_forks: int = 128
    memory_fork_domain: str = "known"
    max_memory_forks: int = 16
    prune_unsatisfiable: bool = True
    record_trace: bool = False
    legacy_dispatch: bool = False


def apply_fault(state: MachineState, kind: str, index: int,
                value: Value) -> None:
    """Apply one fault-spec corruption to *state* through the CoW write API.

    The single write path every fault model funnels through: *kind* is a
    :class:`~repro.constraints.Location` kind (``"reg"``, ``"mem"`` or
    ``"pc"``), *value* is ``ERR`` or a concrete integer.  Register and
    memory corruptions go through ``write_register`` / ``write_memory`` so
    the state's incremental fingerprint and err census stay correct; a
    corrupted PC also drops any stale constraint recorded for it.  Writes
    to the hard-wired zero register are ignored (it cannot hold an error).
    """
    if kind == Location.REGISTER:
        if index == ZERO_REGISTER:
            return
        state.write_register(index, value)
    elif kind == Location.MEMORY:
        state.write_memory(index, value)
    elif kind == Location.PC:
        state.pc = value
        state.constraints = state.constraints.without(Location.pc())
    else:
        raise ValueError(f"unknown fault location kind {kind!r}")


def _read_fault_target(state: MachineState, target: Location) -> Value:
    """Current contents of a fault target (for read-modify-write faults)."""
    if target.kind == Location.REGISTER:
        return state.read_register(target.index)
    if target.kind == Location.MEMORY:
        # An undefined word reads as zero, matching the machine's
        # zero-initialised memory semantics.
        return state.memory.get(target.index, 0)
    if target.kind == Location.PC:
        return state.pc
    raise ValueError(f"unknown fault location kind {target.kind!r}")


def apply_fault_set(state: MachineState, specs) -> None:
    """Apply an ordered collection of fault specs through :func:`apply_fault`.

    The multi-error entry point: every corruption — plain specs, the
    ordered components of a :class:`~repro.faults.spec.BurstFaultSpec`, and
    read-modify-write :class:`~repro.faults.spec.BitFlipFaultSpec` bit
    flips — funnels through the single CoW write path, so incremental
    fingerprints, the err census and the constraint map stay correct no
    matter how many locations one experiment corrupts.

    Specs are duck-typed (this module must not import :mod:`repro.faults`):
    a spec with a non-empty ``components`` tuple is a burst and recurses
    over its components in order; a spec with a ``bit`` attribute flips
    that bit of the target's current contents (``err`` stays ``err`` — a
    flipped unknown is still unknown); anything else writes its ``value``
    (``ERR`` for plain injections).
    """
    for spec in specs:
        components = getattr(spec, "components", None)
        if components:
            apply_fault_set(state, components)
            continue
        target = spec.target
        bit = getattr(spec, "bit", None)
        if bit is not None:
            value = _read_fault_target(state, target)
            if not is_err(value):
                value = value ^ (1 << bit)
        else:
            value = getattr(spec, "value", ERR)
        apply_fault(state, target.kind, target.index, value)


class Executor:
    """Symbolic executor for one program (plus its detectors)."""

    def __init__(self, program: Program,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 config: Optional[ExecutionConfig] = None) -> None:
        self.program = program
        self.detectors = detectors
        self.config = config or ExecutionConfig()
        #: Lifetime count of symbolic steps; a plain int so the hot loop
        #: pays one increment — telemetry reads deltas at search epilogues.
        self.steps_executed = 0
        self._decoded: DecodedProgram = decoded_program(program)
        if self.config.legacy_dispatch:
            self._dispatch = None
        else:
            self._dispatch = self._build_dispatch()

    def _build_dispatch(self) -> List:
        """Per-pc handler table: ``handlers[pc](self, state, decoded[pc])``."""
        specials = {
            "halt": Executor._dx_halt,
            "nop": Executor._dx_nop,
            "throw": Executor._dx_throw,
        }
        table = []
        for entry in self._decoded.entries:
            if entry.category is Category.SPECIAL:
                handler = specials.get(entry.special, Executor._dx_unhandled)
            else:
                handler = self._DX_HANDLERS[entry.category]
            table.append(handler)
        return table

    # ------------------------------------------------------------------- step

    def step(self, state: MachineState) -> List[MachineState]:
        """Execute one instruction, returning every feasible successor state."""
        if not state.is_running:
            raise MachineModelError("cannot step a terminated state")
        self.steps_executed += 1

        if state.steps >= self.config.max_steps:
            timed_out = state.copy()
            timed_out.time_out(TIMED_OUT)
            return [timed_out]

        pc = state.pc
        if pc is ERR:
            return self._control_error_successors(state, note="fetch with corrupted PC")

        dispatch = self._dispatch
        text: Optional[str] = None
        if dispatch is not None:
            if type(pc) is int and 0 <= pc < len(dispatch):
                decoded = self._decoded.entries[pc]
                successors = dispatch[pc](self, state, decoded)
                text = decoded.text
            else:
                crashed = state.copy()
                crashed.throw(ILLEGAL_INSTRUCTION)
                return [crashed]
        else:
            instruction = self.program.fetch(pc)
            if instruction is None:
                crashed = state.copy()
                crashed.throw(ILLEGAL_INSTRUCTION)
                return [crashed]
            handler = self._HANDLERS[instruction.category]
            successors = handler(self, state, instruction)
            if self.config.record_trace:
                text = instruction.render()

        if self.config.prune_unsatisfiable:
            successors = [s for s in successors if s.constraints.satisfiable()]
        steps = state.steps + 1
        if self.config.record_trace:
            for successor in successors:
                successor.steps = steps
                successor.add_trace_entry(TraceEntry(pc, text))
        else:
            for successor in successors:
                successor.steps = steps
        return successors

    def run(self, state: MachineState,
            max_states: int = 1_000_000) -> List[MachineState]:
        """Exhaustively run *state* to termination, returning all final states.

        Convenience wrapper mostly used by tests and examples; the model
        checker in :mod:`repro.core.search` offers the full search interface.
        """
        frontier = [state]
        finals: List[MachineState] = []
        explored = 0
        while frontier:
            current = frontier.pop()
            for successor in self.step(current):
                explored += 1
                if explored > max_states:
                    raise MachineModelError("state budget exhausted in Executor.run")
                if successor.is_running:
                    frontier.append(successor)
                else:
                    finals.append(successor)
        return finals

    # ------------------------------------------------------------ base helpers

    def _base(self, state: MachineState) -> MachineState:
        return state.copy()

    def _advance(self, state: MachineState) -> MachineState:
        state.pc = state.pc + 1
        return state

    def _crash(self, state: MachineState, message: str) -> MachineState:
        crashed = state.copy()
        crashed.throw(message)
        return crashed

    def _register_value(self, state: MachineState, number: int
                        ) -> Tuple[Value, Optional[Location]]:
        value = state.read_register(number)
        location = Location.register(number) if is_err(value) else None
        return value, location

    # ----------------------------------------------------- decoded handlers
    #
    # One handler per decoded category, taking the DecodedInstruction instead
    # of the raw Instruction: no opcode strings, signature inspection or
    # label resolution on the hot path.  Fully concrete operands additionally
    # skip the symbolic resolution machinery (the outcome is provably a
    # single un-forked successor in that case, so behaviour is identical).

    def _dx_arithmetic(self, state: MachineState,
                       d: DecodedInstruction) -> List[MachineState]:
        left = state.read_register(d.b)
        if d.third_is_reg:
            right = state.read_register(d.c)
        else:
            right = d.c
        if left is not ERR and right is not ERR:
            if d.divmod and right == 0:
                return [self._crash(state, DIVIDE_BY_ZERO)]
            successor = state.copy()
            successor.write_register(d.a, d.op_fn(left, right))
            successor.pc = d.next_pc
            return [successor]

        try:
            result = symbolic_binary(d.operator, left, right)
        except ZeroDivisionError:
            return [self._crash(state, DIVIDE_BY_ZERO)]
        except NonDeterministicOperation:
            right_location = Location.register(d.c) \
                if d.third_is_reg and right is ERR else None
            return self._dx_nondeterministic_arithmetic(
                state, d, right, right_location)
        successor = state.copy()
        successor.write_register(d.a, result)
        successor.pc = d.next_pc
        return [successor]

    def _dx_nondeterministic_arithmetic(
            self, state: MachineState, d: DecodedInstruction, right: Value,
            right_location: Optional[Location]) -> List[MachineState]:
        """Fork on whether the symbolic operand equals zero (Section 5.2 rules)."""
        outcomes = resolve_comparison(
            state.constraints, ComparisonOp.EQ, right, 0,
            left_location=right_location, right_location=None)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = state.copy()
            branch.constraints = outcome.constraints
            if outcome.result:  # the symbolic operand is zero
                if d.divmod:
                    branch.throw(DIVIDE_BY_ZERO)
                    successors.append(branch)
                    continue
                branch.write_register(d.a, 0)
            else:
                branch.write_register(d.a, ERR)
            branch.pc = d.next_pc
            successors.append(branch)
        return successors

    def _dx_compare(self, state: MachineState,
                    d: DecodedInstruction) -> List[MachineState]:
        left = state.read_register(d.b)
        if d.third_is_reg:
            right = state.read_register(d.c)
        else:
            right = d.c
        if left is not ERR and right is not ERR:
            successor = state.copy()
            successor.write_register(d.a, 1 if d.compare_fn(left, right) else 0)
            successor.pc = d.next_pc
            return [successor]

        left_location = Location.register(d.b) if left is ERR else None
        right_location = Location.register(d.c) \
            if d.third_is_reg and right is ERR else None
        outcomes = resolve_comparison(state.constraints, d.compare_op,
                                      left, right, left_location, right_location)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = state.copy()
            branch.constraints = outcome.constraints
            branch.write_register(d.a, 1 if outcome.result else 0)
            if outcome.forked:
                branch.forks += 1
            branch.pc = d.next_pc
            successors.append(branch)
        return successors

    def _dx_move(self, state: MachineState,
                 d: DecodedInstruction) -> List[MachineState]:
        successor = state.copy()
        if d.is_mov:
            value = state.read_register(d.b)
            successor.write_register(
                d.a, value,
                transfer_from=Location.register(d.b) if value is ERR else None)
        else:  # li
            successor.write_register(d.a, d.b)
        successor.pc = d.next_pc
        return [successor]

    def _dx_load(self, state: MachineState,
                 d: DecodedInstruction) -> List[MachineState]:
        base = state.read_register(d.b)
        if base is ERR:
            return self._memory_error_loads(state, d.a)
        address = base + d.c
        if not state.is_defined_address(address):
            return [self._crash(state, ILLEGAL_ADDRESS)]
        value = state.read_memory(address)
        successor = state.copy()
        successor.write_register(
            d.a, value,
            transfer_from=Location.memory(address) if value is ERR else None)
        successor.pc = d.next_pc
        return [successor]

    def _dx_store(self, state: MachineState,
                  d: DecodedInstruction) -> List[MachineState]:
        value = state.read_register(d.a)
        value_location = Location.register(d.a) if value is ERR else None
        base = state.read_register(d.b)
        if base is ERR:
            return self._memory_error_stores(state, value, value_location)
        successor = state.copy()
        successor.write_memory(base + d.c, value, transfer_from=value_location)
        successor.pc = d.next_pc
        return [successor]

    def _dx_branch(self, state: MachineState,
                   d: DecodedInstruction) -> List[MachineState]:
        value = state.read_register(d.a)
        if value is not ERR:
            branch = state.copy()
            branch.pc = d.target if d.compare_fn(value, d.c) else d.next_pc
            return [branch]
        outcomes = resolve_comparison(state.constraints, d.compare_op,
                                      value, d.c, Location.register(d.a), None)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = state.copy()
            branch.constraints = outcome.constraints
            if outcome.forked:
                branch.forks += 1
            branch.pc = d.target if outcome.result else d.next_pc
            successors.append(branch)
        return successors

    def _dx_jump(self, state: MachineState,
                 d: DecodedInstruction) -> List[MachineState]:
        successor = state.copy()
        successor.pc = d.target
        return [successor]

    def _dx_call(self, state: MachineState,
                 d: DecodedInstruction) -> List[MachineState]:
        successor = state.copy()
        successor.write_register(RETURN_ADDRESS_REGISTER, d.next_pc)
        successor.pc = d.target
        return [successor]

    def _dx_jump_register(self, state: MachineState,
                          d: DecodedInstruction) -> List[MachineState]:
        target = state.read_register(d.a)
        if target is ERR:
            return self._control_error_successors(
                state, note=f"jr ${d.a} with corrupted target")
        if not self.program.is_valid_address(target):
            return [self._crash(state, ILLEGAL_INSTRUCTION)]
        successor = state.copy()
        successor.pc = target
        return [successor]

    def _dx_io_read(self, state: MachineState,
                    d: DecodedInstruction) -> List[MachineState]:
        if not state.has_input():
            return [self._crash(state, INPUT_EXHAUSTED)]
        successor = state.copy()
        successor.write_register(d.a, successor.next_input())
        successor.pc = d.next_pc
        return [successor]

    def _dx_io_write(self, state: MachineState,
                     d: DecodedInstruction) -> List[MachineState]:
        successor = state.copy()
        if d.is_print:
            successor.append_output(state.read_register(d.a))
        else:  # prints
            successor.append_output(d.a)
        successor.pc = d.next_pc
        return [successor]

    def _dx_check(self, state: MachineState,
                  d: DecodedInstruction) -> List[MachineState]:
        detector = self.detectors.get(d.a)
        if detector is None:
            raise MachineModelError(
                f"check instruction references unknown detector {d.a}")
        outcomes = execute_detector(detector, state)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = state.copy()
            branch.constraints = outcome.constraints
            if outcome.forked:
                branch.forks += 1
            if outcome.detected:
                branch.detect(d.a, detector_exception(d.a))
            else:
                branch.pc = d.next_pc
            successors.append(branch)
        return successors

    def _dx_halt(self, state: MachineState,
                 d: DecodedInstruction) -> List[MachineState]:
        successor = state.copy()
        successor.halt()
        return [successor]

    def _dx_nop(self, state: MachineState,
                d: DecodedInstruction) -> List[MachineState]:
        successor = state.copy()
        successor.pc = d.next_pc
        return [successor]

    def _dx_throw(self, state: MachineState,
                  d: DecodedInstruction) -> List[MachineState]:
        return [self._crash(state, d.b)]

    def _dx_unhandled(self, state: MachineState,
                      d: DecodedInstruction) -> List[MachineState]:
        raise MachineModelError(d.b)

    _DX_HANDLERS = {
        Category.ARITHMETIC: _dx_arithmetic,
        Category.COMPARE: _dx_compare,
        Category.MOVE: _dx_move,
        Category.LOAD: _dx_load,
        Category.STORE: _dx_store,
        Category.BRANCH: _dx_branch,
        Category.JUMP: _dx_jump,
        Category.CALL: _dx_call,
        Category.JUMP_REGISTER: _dx_jump_register,
        Category.IO_READ: _dx_io_read,
        Category.IO_WRITE: _dx_io_write,
        Category.CHECK: _dx_check,
    }

    # ------------------------------------------- legacy string-dispatch path
    #
    # The original handlers, kept verbatim as the semantic reference for the
    # decoded dispatch table (``ExecutionConfig(legacy_dispatch=True)``).

    def _execute_arithmetic(self, state: MachineState,
                            instruction: Instruction) -> List[MachineState]:
        rd, rs = instruction.operands[0], instruction.operands[1]
        left = state.read_register(rs)
        third = instruction.operands[2]
        if instruction.spec.signature[2].value == "reg":
            right = state.read_register(third)
            right_location = Location.register(third) if is_err(right) else None
        else:
            right = third
            right_location = None

        try:
            result = symbolic_binary(instruction.opcode, left, right)
        except ZeroDivisionError:
            return [self._crash(state, DIVIDE_BY_ZERO)]
        except NonDeterministicOperation as operation:
            return self._resolve_nondeterministic_arithmetic(
                state, instruction, left, right, right_location, operation)

        successor = self._base(state)
        successor.write_register(rd, result)
        return [self._advance(successor)]

    def _resolve_nondeterministic_arithmetic(
            self, state: MachineState, instruction: Instruction,
            left: Value, right: Value, right_location: Optional[Location],
            operation: NonDeterministicOperation) -> List[MachineState]:
        """Fork on whether the symbolic operand equals zero (Section 5.2 rules)."""
        rd = instruction.operands[0]
        operator = IMMEDIATE_ALIASES.get(instruction.opcode, instruction.opcode)
        outcomes = resolve_comparison(
            state.constraints, ComparisonOp.EQ, right, 0,
            left_location=right_location, right_location=None)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            if outcome.result:  # the symbolic operand is zero
                if operator in ("div", "mod"):
                    branch.throw(DIVIDE_BY_ZERO)
                    successors.append(branch)
                    continue
                branch.write_register(rd, 0)
            else:
                branch.write_register(rd, ERR)
            successors.append(self._advance(branch))
        return successors

    def _execute_compare(self, state: MachineState,
                         instruction: Instruction) -> List[MachineState]:
        rd, rs = instruction.operands[0], instruction.operands[1]
        op = _COMPARE_OPS[compare_base_opcode(instruction.opcode)]
        left, left_location = self._register_value(state, rs)
        third = instruction.operands[2]
        if instruction.spec.signature[2].value == "reg":
            right, right_location = self._register_value(state, third)
        else:
            right, right_location = third, None

        outcomes = resolve_comparison(state.constraints, op, left, right,
                                      left_location, right_location)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            branch.write_register(rd, 1 if outcome.result else 0)
            if outcome.forked:
                branch.forks += 1
            successors.append(self._advance(branch))
        return successors

    def _execute_move(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        rd = instruction.operands[0]
        if instruction.opcode == "mov":
            rs = instruction.operands[1]
            value = state.read_register(rs)
            successor.write_register(
                rd, value,
                transfer_from=Location.register(rs) if is_err(value) else None)
        else:  # li
            successor.write_register(rd, instruction.operands[1])
        return [self._advance(successor)]

    def _execute_load(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        rt, rs, offset = instruction.operands
        base = state.read_register(rs)
        if is_err(base):
            return self._memory_error_loads(state, rt)
        address = base + offset
        if not state.is_defined_address(address):
            return [self._crash(state, ILLEGAL_ADDRESS)]
        value = state.read_memory(address)
        successor = self._base(state)
        successor.write_register(
            rt, value,
            transfer_from=Location.memory(address) if is_err(value) else None)
        return [self._advance(successor)]

    def _memory_error_loads(self, state: MachineState, rt: int) -> List[MachineState]:
        """Load through a corrupted pointer: arbitrary location or exception."""
        successors: List[MachineState] = [self._crash(state, ILLEGAL_ADDRESS)]
        if self.config.memory_fork_domain == "known":
            for address in self._memory_fork_addresses(state):
                branch = self._base(state)
                value = branch.read_memory(address)
                branch.write_register(
                    rt, value,
                    transfer_from=Location.memory(address) if is_err(value) else None)
                branch.forks += 1
                successors.append(self._advance(branch))
        return successors

    def _execute_store(self, state: MachineState,
                       instruction: Instruction) -> List[MachineState]:
        rt, rs, offset = instruction.operands
        value = state.read_register(rt)
        value_location = Location.register(rt) if is_err(value) else None
        base = state.read_register(rs)
        if is_err(base):
            return self._memory_error_stores(state, value, value_location)
        address = base + offset
        successor = self._base(state)
        successor.write_memory(address, value, transfer_from=value_location)
        return [self._advance(successor)]

    def _memory_error_stores(self, state: MachineState, value: Value,
                             value_location: Optional[Location]) -> List[MachineState]:
        """Store through a corrupted pointer: overwrite an arbitrary location
        or create a new value in memory (paper Section 5.2)."""
        successors: List[MachineState] = []
        fresh_address = max(state.memory) + 1 if state.memory else 0
        fresh = self._base(state)
        fresh.write_memory(fresh_address, value, transfer_from=value_location)
        fresh.forks += 1
        successors.append(self._advance(fresh))
        if self.config.memory_fork_domain == "known":
            for address in self._memory_fork_addresses(state):
                branch = self._base(state)
                branch.write_memory(address, value, transfer_from=value_location)
                branch.forks += 1
                successors.append(self._advance(branch))
        return successors

    def _memory_fork_addresses(self, state: MachineState) -> List[int]:
        addresses = sorted(state.memory)
        cap = self.config.max_memory_forks
        if len(addresses) <= cap:
            return addresses
        stride = max(1, len(addresses) // cap)
        return addresses[::stride][:cap]

    def _execute_branch(self, state: MachineState,
                        instruction: Instruction) -> List[MachineState]:
        rs, immediate, label = instruction.operands
        op = ComparisonOp.EQ if instruction.opcode == "beq" else ComparisonOp.NE
        value, location = self._register_value(state, rs)
        target = self.program.resolve(label)
        outcomes = resolve_comparison(state.constraints, op, value, immediate,
                                      location, None)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            if outcome.forked:
                branch.forks += 1
            branch.pc = target if outcome.result else branch.pc + 1
            successors.append(branch)
        return successors

    def _execute_jump(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        successor.pc = self.program.resolve(instruction.operands[0])
        return [successor]

    def _execute_call(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        successor.write_register(RETURN_ADDRESS_REGISTER, state.pc + 1)
        successor.pc = self.program.resolve(instruction.operands[0])
        return [successor]

    def _execute_jump_register(self, state: MachineState,
                               instruction: Instruction) -> List[MachineState]:
        target = state.read_register(instruction.operands[0])
        if is_err(target):
            return self._control_error_successors(
                state, note=f"jr ${instruction.operands[0]} with corrupted target")
        if not self.program.is_valid_address(target):
            return [self._crash(state, ILLEGAL_INSTRUCTION)]
        successor = self._base(state)
        successor.pc = target
        return [successor]

    def _control_error_successors(self, state: MachineState,
                                  note: str = "") -> List[MachineState]:
        """Erroneous control transfer: arbitrary valid code location or crash."""
        successors: List[MachineState] = [self._crash(state, ILLEGAL_INSTRUCTION)]
        for target in self._control_fork_targets():
            branch = self._base(state)
            branch.pc = target
            branch.forks += 1
            successors.append(branch)
        return successors

    def _control_fork_targets(self) -> List[int]:
        return self._decoded.fork_targets(self.config.control_fork_domain,
                                          self.config.max_control_forks)

    def _execute_io_read(self, state: MachineState,
                         instruction: Instruction) -> List[MachineState]:
        if not state.has_input():
            return [self._crash(state, INPUT_EXHAUSTED)]
        successor = self._base(state)
        value = successor.next_input()
        successor.write_register(instruction.operands[0], value)
        return [self._advance(successor)]

    def _execute_io_write(self, state: MachineState,
                          instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        if instruction.opcode == "print":
            successor.append_output(state.read_register(instruction.operands[0]))
        else:  # prints
            successor.append_output(instruction.operands[0])
        return [self._advance(successor)]

    def _execute_check(self, state: MachineState,
                       instruction: Instruction) -> List[MachineState]:
        identifier = instruction.operands[0]
        detector = self.detectors.get(identifier)
        if detector is None:
            raise MachineModelError(
                f"check instruction references unknown detector {identifier}")
        outcomes = execute_detector(detector, state)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            if outcome.forked:
                branch.forks += 1
            if outcome.detected:
                branch.detect(identifier, detector_exception(identifier))
            else:
                self._advance(branch)
            successors.append(branch)
        return successors

    def _execute_special(self, state: MachineState,
                         instruction: Instruction) -> List[MachineState]:
        if instruction.opcode == "halt":
            successor = self._base(state)
            successor.halt()
            return [successor]
        if instruction.opcode == "nop":
            return [self._advance(self._base(state))]
        if instruction.opcode == "throw":
            return [self._crash(state, instruction.operands[0])]
        raise MachineModelError(
            f"unhandled special opcode {instruction.opcode} at pc {state.pc} "
            f"({self.program.source_line(state.pc)})")

    _HANDLERS = {
        Category.ARITHMETIC: _execute_arithmetic,
        Category.COMPARE: _execute_compare,
        Category.MOVE: _execute_move,
        Category.LOAD: _execute_load,
        Category.STORE: _execute_store,
        Category.BRANCH: _execute_branch,
        Category.JUMP: _execute_jump,
        Category.CALL: _execute_call,
        Category.JUMP_REGISTER: _execute_jump_register,
        Category.IO_READ: _execute_io_read,
        Category.IO_WRITE: _execute_io_write,
        Category.CHECK: _execute_check,
        Category.SPECIAL: _execute_special,
    }


# --------------------------------------------------------------------------
# Lean concrete interpreter (SimpleScalar-substitute building block).
# --------------------------------------------------------------------------

def concrete_step(program: Program, state: MachineState,
                  detectors: DetectorSet = EMPTY_DETECTORS) -> MachineState:
    """Execute one instruction on a fully concrete state, in place.

    Dispatches to the program's pre-decoded per-instruction op.  Raises
    :class:`SymbolicValueEncountered` if an ``err`` value is met — the
    caller should fall back to the symbolic executor in that case.
    """
    pc = state.pc
    if pc is ERR:
        raise SymbolicValueEncountered("PC is err")
    ops = decoded_program(program).concrete_ops
    if type(pc) is int and 0 <= pc < len(ops):
        ops[pc](state, detectors)
    else:
        state.throw(ILLEGAL_INSTRUCTION)
    return state


def run_concrete(program: Program, state: MachineState,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 max_steps: int = 200_000) -> MachineState:
    """Run a fully concrete state to termination (in place).

    Uses the decoded superblocks: when the program counter sits on a block
    leader and the remaining step budget covers the whole block, the fused
    function executes the run in one call; otherwise execution falls back to
    the per-instruction ops.  Observable behaviour (including the exact step
    count at a timeout) is identical to single-stepping.
    """
    decoded = decoded_program(program)
    ops = decoded.concrete_ops
    block_fns = decoded.block_fns
    block_lens = decoded.block_lens
    length = decoded.length
    steps_at_entry = state.steps
    block_runs = 0  # local counter: the loop itself stays untelemetered
    try:
        while state.is_running:
            steps = state.steps
            if steps >= max_steps:
                state.time_out(TIMED_OUT)
                break
            pc = state.pc
            if type(pc) is int and 0 <= pc < length:
                block = block_fns[pc]
                if block is not None and steps + block_lens[pc] <= max_steps:
                    block(state)
                    block_runs += 1
                else:
                    ops[pc](state, detectors)
            elif pc is ERR:
                raise SymbolicValueEncountered("PC is err")
            else:
                state.throw(ILLEGAL_INSTRUCTION)
    finally:
        hub = _obs.get()
        if hub.enabled:
            hub.count("interp.steps", state.steps - steps_at_entry)
            if block_runs:
                hub.count("interp.superblock_runs", block_runs)
    return state


def run_concrete_until(program: Program, state: MachineState,
                       stop_pc: int, occurrence: int = 1,
                       detectors: DetectorSet = EMPTY_DETECTORS,
                       max_steps: int = 200_000) -> MachineState:
    """Run concretely until the program counter reaches *stop_pc*.

    Used to position the machine at an injection breakpoint: execution stops
    *before* the instruction at ``stop_pc`` is executed for the
    *occurrence*-th time.  If the breakpoint is never reached the state is
    simply run to termination.  Superblocks that would step *through* the
    breakpoint are skipped so every visit is observed.
    """
    decoded = decoded_program(program)
    ops = decoded.concrete_ops
    block_fns = decoded.block_fns
    block_lens = decoded.block_lens
    length = decoded.length
    remaining = occurrence
    while state.is_running:
        steps = state.steps
        if steps >= max_steps:
            state.time_out(TIMED_OUT)
            break
        pc = state.pc
        if pc == stop_pc:
            remaining -= 1
            if remaining <= 0:
                break
        if type(pc) is int and 0 <= pc < length:
            block = block_fns[pc]
            if (block is not None and steps + block_lens[pc] <= max_steps
                    and not pc < stop_pc < pc + block_lens[pc]):
                block(state)
            else:
                ops[pc](state, detectors)
        elif pc is ERR:
            raise SymbolicValueEncountered("PC is err")
        else:
            state.throw(ILLEGAL_INSTRUCTION)
    return state


# --------------------------------------------------------------------------
# Legacy string-dispatch concrete interpreter, kept verbatim as the semantic
# reference for the decoded ops (decode-equivalence tests and benchmarks).
# --------------------------------------------------------------------------

def concrete_step_legacy(program: Program, state: MachineState,
                         detectors: DetectorSet = EMPTY_DETECTORS) -> MachineState:
    """Original string-dispatch :func:`concrete_step` (reference semantics)."""
    pc = state.pc
    if is_err(pc):
        raise SymbolicValueEncountered("PC is err")
    instruction = program.fetch(pc)
    if instruction is None:
        state.throw(ILLEGAL_INSTRUCTION)
        return state

    opcode = instruction.opcode
    operands = instruction.operands
    category = instruction.category
    state.steps += 1

    def reg(number: int) -> int:
        value = state.read_register(number)
        if is_err(value):
            raise SymbolicValueEncountered(f"register ${number} is err")
        return value

    if category is Category.ARITHMETIC:
        rd, rs, third = operands
        left = reg(rs)
        right = reg(third) if instruction.spec.signature[2].value == "reg" else third
        operator = IMMEDIATE_ALIASES.get(opcode, opcode)
        if operator in ("div", "mod") and right == 0:
            state.throw(DIVIDE_BY_ZERO)
            return state
        state.write_register(rd, concrete_binary(operator, left, right))
        state.pc = pc + 1
    elif category is Category.COMPARE:
        rd, rs, third = operands
        op = _COMPARE_OPS[compare_base_opcode(opcode)]
        left = reg(rs)
        right = reg(third) if instruction.spec.signature[2].value == "reg" else third
        state.write_register(rd, 1 if op.evaluate(left, right) else 0)
        state.pc = pc + 1
    elif category is Category.MOVE:
        value = reg(operands[1]) if opcode == "mov" else operands[1]
        state.write_register(operands[0], value)
        state.pc = pc + 1
    elif category is Category.LOAD:
        rt, rs, offset = operands
        address = reg(rs) + offset
        if not state.is_defined_address(address):
            state.throw(ILLEGAL_ADDRESS)
            return state
        value = state.read_memory(address)
        if is_err(value):
            raise SymbolicValueEncountered(f"memory {address} is err")
        state.write_register(rt, value)
        state.pc = pc + 1
    elif category is Category.STORE:
        rt, rs, offset = operands
        state.write_memory(reg(rs) + offset, reg(rt))
        state.pc = pc + 1
    elif category is Category.BRANCH:
        rs, immediate, label = operands
        value = reg(rs)
        taken = (value == immediate) if opcode == "beq" else (value != immediate)
        state.pc = program.resolve(label) if taken else pc + 1
    elif category is Category.JUMP:
        state.pc = program.resolve(operands[0])
    elif category is Category.CALL:
        state.write_register(RETURN_ADDRESS_REGISTER, pc + 1)
        state.pc = program.resolve(operands[0])
    elif category is Category.JUMP_REGISTER:
        target = reg(operands[0])
        if not program.is_valid_address(target):
            state.throw(ILLEGAL_INSTRUCTION)
            return state
        state.pc = target
    elif category is Category.IO_READ:
        if not state.has_input():
            state.throw(INPUT_EXHAUSTED)
            return state
        state.write_register(operands[0], state.next_input())
        state.pc = pc + 1
    elif category is Category.IO_WRITE:
        if opcode == "print":
            state.append_output(reg(operands[0]))
        else:
            state.append_output(operands[0])
        state.pc = pc + 1
    elif category is Category.CHECK:
        detector = detectors.get(operands[0])
        if detector is None:
            raise MachineModelError(
                f"check instruction references unknown detector {operands[0]}")
        outcomes = execute_detector(detector, state)
        if len(outcomes) != 1:
            raise SymbolicValueEncountered("detector outcome is symbolic")
        if outcomes[0].detected:
            state.detect(operands[0], detector_exception(operands[0]))
        else:
            state.pc = pc + 1
    elif category is Category.SPECIAL:
        if opcode == "halt":
            state.halt()
        elif opcode == "nop":
            state.pc = pc + 1
        elif opcode == "throw":
            state.throw(operands[0])
        else:  # pragma: no cover - exhaustive
            raise MachineModelError(
                f"unhandled special opcode {opcode} at pc {pc} "
                f"({program.source_line(pc)})")
    else:  # pragma: no cover - exhaustive
        raise MachineModelError(f"unhandled category {category}")
    return state


def run_concrete_legacy(program: Program, state: MachineState,
                        detectors: DetectorSet = EMPTY_DETECTORS,
                        max_steps: int = 200_000) -> MachineState:
    """Single-stepping :func:`run_concrete` over the legacy dispatch."""
    while state.is_running:
        if state.steps >= max_steps:
            state.time_out(TIMED_OUT)
            break
        concrete_step_legacy(program, state, detectors)
    return state
