"""One-time pre-decoding of a :class:`~repro.isa.program.Program`.

Both interpreters used to re-derive everything from instruction *strings* on
every step: opcode comparisons, ``IMMEDIATE_ALIASES`` lookups,
``compare_base_opcode`` suffix stripping, label resolution and
``spec.signature`` inspection.  This module performs all of that work exactly
once per program and caches the result, so the hot loops become
``handlers[pc](state, decoded[pc])`` with zero string work:

* :class:`DecodedInstruction` — a dense record per code address: resolved
  register indices, pre-parsed immediates, the normalised binary operator and
  its concrete implementation, the pre-computed :class:`ComparisonOp` (and its
  plain-Python evaluator), pre-resolved branch/jump/call targets, and the
  pre-rendered assembly text used by traces and error messages.

* per-address *concrete ops* — tiny specialised Python functions (one per
  instruction, generated and ``exec``-compiled once) implementing the exact
  semantics of the legacy ``concrete_step`` string dispatch for that single
  instruction.

* *superblocks* — runs of straight-line, non-forking instructions fused into
  a single generated function.  ``run_concrete`` enters a superblock when the
  program counter sits on a block leader and the step budget allows the whole
  block; faults, detectors (``check``), control transfers and interpreter
  breakpoints fall back to the single-instruction ops, so observable
  semantics are bit-identical to single-stepping.

* memoised static *control-fork target* sets for every
  ``control_fork_domain`` setting, replacing the per-fork
  ``label_addresses()`` sort.

All generated code mutates state exclusively through the CoW write API
(``write_register`` / ``write_memory`` / ``append_output``), preserving the
incremental fingerprint and err-census bookkeeping.

The cache is keyed by program identity with weakref eviction and is rebuilt
inside worker processes — decoded tables are never pickled (generated
functions could not be, and the rebuild is a one-time cost per worker).
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..constraints import ComparisonOp
from ..detectors import execute_detector
from ..errors.propagation import (IMMEDIATE_ALIASES, _CONCRETE_OPS,
                                  _concrete_div, _concrete_mod)
from ..isa.instructions import (Category, Instruction, OperandKind,
                                RETURN_ADDRESS_REGISTER, compare_base_opcode)
from ..isa.program import Program
from ..isa.values import ERR
from .exceptions import (DIVIDE_BY_ZERO, ILLEGAL_ADDRESS, ILLEGAL_INSTRUCTION,
                         INPUT_EXHAUSTED, MachineModelError,
                         SymbolicValueEncountered, detector_exception)

#: Comparison operator implemented by each comparison-setter opcode.
COMPARE_OPS: Dict[str, ComparisonOp] = {
    "seteq": ComparisonOp.EQ, "setne": ComparisonOp.NE,
    "setgt": ComparisonOp.GT, "setlt": ComparisonOp.LT,
    "setge": ComparisonOp.GE, "setle": ComparisonOp.LE,
}

#: Plain-Python evaluator per comparison operator (avoids the enum method
#: chain on the concrete fast path).
_COMPARE_FNS: Dict[ComparisonOp, Callable[[int, int], bool]] = {
    ComparisonOp.EQ: lambda a, b: a == b,
    ComparisonOp.NE: lambda a, b: a != b,
    ComparisonOp.GT: lambda a, b: a > b,
    ComparisonOp.LT: lambda a, b: a < b,
    ComparisonOp.GE: lambda a, b: a >= b,
    ComparisonOp.LE: lambda a, b: a <= b,
}

#: Python infix spelling of each binary operator with one (add / sub / ...);
#: div and mod use the C-style truncating helpers instead.
_INFIX_OPS = {
    "add": "+", "sub": "-", "mult": "*", "and": "&", "or": "|",
    "xor": "^", "sll": "<<", "srl": ">>",
}

_COMPARE_INFIX = {
    ComparisonOp.EQ: "==", ComparisonOp.NE: "!=", ComparisonOp.GT: ">",
    ComparisonOp.LT: "<", ComparisonOp.GE: ">=", ComparisonOp.LE: "<=",
}

#: Categories that a superblock may fuse: deterministic on concrete state,
#: no forking, fall through to pc + 1.  Control transfers, ``check`` and the
#: terminating specials stay single-stepped.
STRAIGHTLINE_CATEGORIES = frozenset((
    Category.ARITHMETIC, Category.COMPARE, Category.MOVE, Category.LOAD,
    Category.STORE, Category.IO_READ, Category.IO_WRITE,
))

#: Maximum number of instructions fused into one superblock.
SUPERBLOCK_LIMIT = 32


def is_straightline(instruction: Instruction) -> bool:
    """True if *instruction* may be fused into a superblock."""
    category = instruction.category
    if category in STRAIGHTLINE_CATEGORIES:
        return True
    return category is Category.SPECIAL and instruction.opcode == "nop"


class DecodedInstruction:
    """Fully decoded form of one instruction at a fixed code address.

    The generic operand slots ``a`` / ``b`` / ``c`` are category-specific:

    ========== ============= ============ ===========================
    category    a             b            c
    ========== ============= ============ ===========================
    arithmetic  rd            rs           third (reg index or imm)
    compare     rd            rs           third (reg index or imm)
    move        rd            src/imm      --
    load        rt            rs           offset
    store       rt            rs           offset
    branch      rs            --           immediate
    jump/call   --            --           --
    jr          rs            --           --
    io read     rd            --           --
    io write    operand       --           --
    check       detector id   --           --
    special     --            message      --
    ========== ============= ============ ===========================
    """

    __slots__ = ("pc", "next_pc", "instruction", "opcode", "category", "text",
                 "source", "a", "b", "c", "third_is_reg", "operator", "op_fn",
                 "divmod", "compare_op", "compare_fn", "target", "special",
                 "is_mov", "is_print")

    def __init__(self, pc: int, instruction: Instruction,
                 program: Program) -> None:
        self.pc = pc
        self.next_pc = pc + 1
        self.instruction = instruction
        self.opcode = instruction.opcode
        self.category = instruction.category
        self.text = instruction.render()
        self.source = program.source_lines.get(pc, self.text)
        self.a: object = None
        self.b: object = None
        self.c: object = None
        self.third_is_reg = False
        self.operator: Optional[str] = None
        self.op_fn: Optional[Callable[[int, int], int]] = None
        self.divmod = False
        self.compare_op: Optional[ComparisonOp] = None
        self.compare_fn: Optional[Callable[[int, int], bool]] = None
        self.target: Optional[int] = None
        self.special: Optional[str] = None
        self.is_mov = False
        self.is_print = False

        operands = instruction.operands
        category = self.category
        if category is Category.ARITHMETIC:
            self.a, self.b, self.c = operands
            self.third_is_reg = \
                instruction.spec.signature[2] is OperandKind.REGISTER
            self.operator = IMMEDIATE_ALIASES.get(self.opcode, self.opcode)
            self.op_fn = _CONCRETE_OPS[self.operator]
            self.divmod = self.operator in ("div", "mod")
        elif category is Category.COMPARE:
            self.a, self.b, self.c = operands
            self.third_is_reg = \
                instruction.spec.signature[2] is OperandKind.REGISTER
            self.compare_op = COMPARE_OPS[compare_base_opcode(self.opcode)]
            self.compare_fn = _COMPARE_FNS[self.compare_op]
        elif category is Category.MOVE:
            self.a, self.b = operands
            self.is_mov = self.opcode == "mov"
        elif category in (Category.LOAD, Category.STORE):
            self.a, self.b, self.c = operands
        elif category is Category.BRANCH:
            self.a, self.c, label = operands
            self.target = program.resolve(label)
            self.compare_op = ComparisonOp.EQ if self.opcode == "beq" \
                else ComparisonOp.NE
            self.compare_fn = _COMPARE_FNS[self.compare_op]
        elif category in (Category.JUMP, Category.CALL):
            self.target = program.resolve(operands[0])
        elif category in (Category.JUMP_REGISTER, Category.IO_READ,
                          Category.CHECK):
            self.a = operands[0]
        elif category is Category.IO_WRITE:
            self.a = operands[0]
            self.is_print = self.opcode == "print"
        elif category is Category.SPECIAL:
            if self.opcode in ("halt", "nop", "throw"):
                self.special = self.opcode
                if self.opcode == "throw":
                    self.b = operands[0]
            else:
                self.special = "unhandled"
                self.b = (f"unhandled special opcode {self.opcode} "
                          f"at pc {pc} ({self.source})")


# --------------------------------------------------------------------------
# Generated concrete ops and superblocks.
#
# The emitters below produce the body of one instruction's concrete
# semantics as source lines over a local ``state`` (and ``detectors`` for
# ``check``).  The statements replicate the legacy ``concrete_step``
# behaviour exactly: ``steps`` is incremented before any operand read, the
# program counter is only advanced at the very end (so a raised
# ``SymbolicValueEncountered`` leaves it on the faulting instruction), store
# reads the address register before the value register, and all error
# messages are byte-identical.
# --------------------------------------------------------------------------

def _reg_read(lines: List[str], var: str, number: int) -> None:
    if number == 0:
        lines.append(f"    {var} = 0")
        return
    lines.append(f"    {var} = state.read_register({number})")
    lines.append(f"    if {var} is _ERR:")
    lines.append(f"        raise _SVE('register ${number} is err')")


def _emit_concrete(d: DecodedInstruction, next_pc: int) -> List[str]:
    """Source lines executing *d* on ``state``, falling through to *next_pc*.

    Terminating outcomes (halt / throw / detect) return without touching the
    program counter, exactly like the legacy interpreter.
    """
    lines: List[str] = ["    state.steps += 1"]
    category = d.category
    advance = True

    if category is Category.ARITHMETIC:
        _reg_read(lines, "a", d.b)
        if d.third_is_reg:
            _reg_read(lines, "b", d.c)
            rhs = "b"
        else:
            rhs = repr(d.c)
        if d.divmod:
            if rhs == "b":
                lines.append("    if b == 0:")
                lines.append("        state.throw(_DIVIDE_BY_ZERO)")
                lines.append("        return")
            elif d.c == 0:
                lines.append("    state.throw(_DIVIDE_BY_ZERO)")
                lines.append("    return")
            fn = "_div" if d.operator == "div" else "_mod"
            expr = f"{fn}(a, {rhs})"
        elif d.operator in _INFIX_OPS:
            expr = f"a {_INFIX_OPS[d.operator]} {rhs}"
        else:  # pragma: no cover - exhaustive over _CONCRETE_OPS
            expr = f"_OPS[{d.operator!r}](a, {rhs})"
        if not (d.divmod and not d.third_is_reg and d.c == 0):
            lines.append(f"    state.write_register({d.a}, {expr})")
        else:
            advance = False
    elif category is Category.COMPARE:
        _reg_read(lines, "a", d.b)
        if d.third_is_reg:
            _reg_read(lines, "b", d.c)
            rhs = "b"
        else:
            rhs = repr(d.c)
        infix = _COMPARE_INFIX[d.compare_op]
        lines.append(f"    state.write_register({d.a}, "
                     f"1 if a {infix} {rhs} else 0)")
    elif category is Category.MOVE:
        if d.is_mov:
            _reg_read(lines, "v", d.b)
            lines.append(f"    state.write_register({d.a}, v)")
        else:
            lines.append(f"    state.write_register({d.a}, {d.b!r})")
    elif category is Category.LOAD:
        _reg_read(lines, "a", d.b)
        lines.append(f"    addr = a + {d.c!r}")
        lines.append("    if not state.is_defined_address(addr):")
        lines.append("        state.throw(_ILLEGAL_ADDRESS)")
        lines.append("        return")
        lines.append("    v = state.read_memory(addr)")
        lines.append("    if v is _ERR:")
        lines.append("        raise _SVE('memory %d is err' % addr)")
        lines.append(f"    state.write_register({d.a}, v)")
    elif category is Category.STORE:
        _reg_read(lines, "a", d.b)
        _reg_read(lines, "v", d.a)
        lines.append(f"    state.write_memory(a + {d.c!r}, v)")
    elif category is Category.BRANCH:
        _reg_read(lines, "a", d.a)
        infix = _COMPARE_INFIX[d.compare_op]
        lines.append(f"    state.pc = {d.target} "
                     f"if a {infix} {d.c!r} else {next_pc}")
        advance = False
    elif category is Category.JUMP:
        lines.append(f"    state.pc = {d.target}")
        advance = False
    elif category is Category.CALL:
        lines.append(f"    state.write_register({RETURN_ADDRESS_REGISTER}, "
                     f"{d.next_pc})")
        lines.append(f"    state.pc = {d.target}")
        advance = False
    elif category is Category.JUMP_REGISTER:
        _reg_read(lines, "a", d.a)
        lines.append(f"    if a.__class__ is int and 0 <= a < _CODE_LEN:")
        lines.append("        state.pc = a")
        lines.append("    else:")
        lines.append("        state.throw(_ILLEGAL_INSTRUCTION)")
        advance = False
    elif category is Category.IO_READ:
        lines.append("    if not state.has_input():")
        lines.append("        state.throw(_INPUT_EXHAUSTED)")
        lines.append("        return")
        lines.append(f"    state.write_register({d.a}, state.next_input())")
    elif category is Category.IO_WRITE:
        if d.is_print:
            _reg_read(lines, "v", d.a)
            lines.append("    state.append_output(v)")
        else:
            lines.append(f"    state.append_output({d.a!r})")
    elif category is Category.CHECK:
        lines.append(f"    det = detectors.get({d.a!r})")
        lines.append("    if det is None:")
        lines.append("        raise _MME('check instruction references "
                     f"unknown detector {d.a}')")
        lines.append("    outcomes = _execute_detector(det, state)")
        lines.append("    if len(outcomes) != 1:")
        lines.append("        raise _SVE('detector outcome is symbolic')")
        lines.append("    if outcomes[0].detected:")
        lines.append(f"        state.detect({d.a!r}, "
                     f"{detector_exception(d.a)!r})")
        lines.append("        return")
        advance = True
    elif category is Category.SPECIAL:
        if d.special == "halt":
            lines.append("    state.halt()")
            advance = False
        elif d.special == "nop":
            pass  # steps += 1 then fall through
        elif d.special == "throw":
            lines.append(f"    state.throw({d.b!r})")
            advance = False
        else:
            lines.append(f"    raise _MME({d.b!r})")
            advance = False
    else:  # pragma: no cover - exhaustive
        raise MachineModelError(f"unhandled category {category}")

    if advance:
        lines.append(f"    state.pc = {next_pc}")
    return lines


def _exec_namespace(program: Program) -> Dict[str, object]:
    return {
        "_ERR": ERR,
        "_SVE": SymbolicValueEncountered,
        "_MME": MachineModelError,
        "_DIVIDE_BY_ZERO": DIVIDE_BY_ZERO,
        "_ILLEGAL_ADDRESS": ILLEGAL_ADDRESS,
        "_ILLEGAL_INSTRUCTION": ILLEGAL_INSTRUCTION,
        "_INPUT_EXHAUSTED": INPUT_EXHAUSTED,
        "_div": _concrete_div,
        "_mod": _concrete_mod,
        "_OPS": _CONCRETE_OPS,
        "_execute_detector": execute_detector,
        # Length only — holding e.g. ``program.is_valid_address`` (a bound
        # method) would keep the Program alive and defeat cache eviction.
        "_CODE_LEN": len(program),
    }


class DecodedProgram:
    """The decoded tables for one program.

    Holds *no* strong reference to the :class:`Program` (only to its
    instructions and derived data), so the identity-keyed cache entry can be
    evicted as soon as the program itself is garbage collected.
    """

    __slots__ = ("name", "length", "entries", "concrete_ops", "block_fns",
                 "block_lens", "_label_addresses", "_ct_targets",
                 "_fork_targets", "__weakref__")

    def __init__(self, program: Program) -> None:
        self.name = program.name
        self.length = len(program)
        self.entries: Tuple[DecodedInstruction, ...] = tuple(
            DecodedInstruction(pc, instruction, program)
            for pc, instruction in enumerate(program.code))
        self._label_addresses = program.label_addresses()
        self._ct_targets = program.control_transfer_targets()
        self._fork_targets: Dict[Tuple[str, int], List[int]] = {}
        self._compile(program)

    # ------------------------------------------------------------ generation

    def _compile(self, program: Program) -> None:
        """Generate and compile the per-pc ops and superblocks in one pass."""
        source: List[str] = []
        for d in self.entries:
            source.append(f"def _op{d.pc}(state, detectors):")
            source.extend(_emit_concrete(d, d.next_pc))
            source.append("")
        blocks = self._plan_superblocks()
        for start, end in blocks:
            source.append(f"def _blk{start}(state):")
            for pc in range(start, end):
                source.extend(_emit_concrete(self.entries[pc], pc + 1))
            source.append("")

        namespace = _exec_namespace(program)
        code = compile("\n".join(source), f"<decoded {self.name}>", "exec")
        exec(code, namespace)

        self.concrete_ops: Tuple[Callable, ...] = tuple(
            namespace[f"_op{pc}"] for pc in range(self.length))
        self.block_fns: List[Optional[Callable]] = [None] * self.length
        self.block_lens: List[int] = [0] * self.length
        for start, end in blocks:
            self.block_fns[start] = namespace[f"_blk{start}"]
            self.block_lens[start] = end - start
        hub = _obs.get()
        if hub.enabled:
            hub.count("interp.programs_decoded")
            hub.count("interp.superblocks_compiled", len(blocks))

    def _plan_superblocks(self) -> List[Tuple[int, int]]:
        """Choose ``[start, end)`` ranges of fused straight-line code.

        A block starts at every *leader* (program entry, label target, the
        instruction after a control transfer or ``check``) inside a maximal
        straight-line run, plus chaining points where a previous block hit
        :data:`SUPERBLOCK_LIMIT`, and extends to the end of the run or the
        limit, whichever is closer.  Blocks may overlap; each is a correct
        fusion from its own entry point.
        """
        fusible = [is_straightline(d.instruction) for d in self.entries]
        leaders = set(self._label_addresses)
        leaders.add(0)
        for d in self.entries:
            if not fusible[d.pc]:
                leaders.add(d.next_pc)

        blocks: List[Tuple[int, int]] = []
        planned = set()
        for leader in sorted(leaders):
            start = leader
            while (start not in planned and start < self.length
                   and fusible[start]):
                end = start
                while (end < self.length and fusible[end]
                       and end - start < SUPERBLOCK_LIMIT
                       ):
                    end += 1
                if end - start < 2:
                    break
                blocks.append((start, end))
                planned.add(start)
                start = end
        return blocks

    # -------------------------------------------------------- fork targets

    def fork_targets(self, domain: str, cap: int) -> List[int]:
        """Static control-fork landing sites for *domain*, capped at *cap*.

        Memoised per ``(domain, cap)``; callers must not mutate the result.
        """
        key = (domain, cap)
        cached = self._fork_targets.get(key)
        if cached is not None:
            return cached
        if domain == "exception_only":
            targets: Sequence[int] = ()
        elif domain == "labels":
            targets = self._label_addresses
        elif domain == "targets":
            targets = self._ct_targets
        elif domain == "all":
            targets = range(self.length)
        else:
            raise MachineModelError(f"unknown control fork domain {domain!r}")
        targets = list(targets)
        if len(targets) > cap:
            stride = max(1, len(targets) // cap)
            targets = targets[::stride][:cap]
        self._fork_targets[key] = targets
        return targets


# --------------------------------------------------------------------------
# Per-program cache.
# --------------------------------------------------------------------------

_CACHE: Dict[int, Tuple[Callable[[], Optional[Program]], DecodedProgram]] = {}


def decoded_program(program: Program) -> DecodedProgram:
    """The decoded tables for *program*, built at most once per identity.

    Keyed by ``id(program)`` with a weakref guard: a recycled id (new program
    allocated at a dead program's address) misses and rebuilds, and entries
    are evicted as soon as the program is collected.  Worker processes that
    unpickle a program therefore decode it once on first use.
    """
    key = id(program)
    entry = _CACHE.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    decoded = DecodedProgram(program)

    def _evict(_ref: object, _key: int = key) -> None:
        _CACHE.pop(_key, None)

    _CACHE[key] = (weakref.ref(program, _evict), decoded)
    return decoded


def clear_decode_cache() -> None:
    """Drop every cached decoded program (test hook)."""
    _CACHE.clear()
