"""Machine-level exceptional conditions.

The paper's machine model terminates a program abnormally in a small number
of well-defined ways (Sections 5.1, 5.2 and 5.4).  Each is represented here
by a symbolic name carried in the machine state's ``exception`` field when
the state's status becomes ``EXCEPTION`` (crash), ``DETECTED`` (a detector
fired) or ``TIMEOUT`` (the watchdog bound was exceeded).
"""

from __future__ import annotations


#: Fetch from an invalid code address, or an erroneous jump/branch target.
ILLEGAL_INSTRUCTION = "illegal instruction"

#: Load or store through an invalid/undefined memory address.
ILLEGAL_ADDRESS = "illegal address"

#: Integer division (or modulo) by zero.
DIVIDE_BY_ZERO = "div-zero"

#: ``read`` executed with an exhausted input stream.
INPUT_EXHAUSTED = "input exhausted"

#: Watchdog bound on executed instructions exceeded (Section 5.4).
TIMED_OUT = "timed out"

#: Prefix used for exceptions raised by failing detectors.
DETECTOR_PREFIX = "detector"


def detector_exception(detector_id: int) -> str:
    """Exception message recorded when detector *detector_id* fires."""
    return f"{DETECTOR_PREFIX} {detector_id} failed"


class MachineModelError(RuntimeError):
    """Raised for internal misuse of the machine model (not program errors).

    Program-level failures (crashes, detections, timeouts) are represented in
    the machine state itself; this exception signals bugs such as stepping a
    state that has already terminated.
    """


class SymbolicValueEncountered(MachineModelError):
    """Raised by the concrete interpreter when it meets an ``err`` value."""
