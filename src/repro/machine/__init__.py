"""Machine model: state, execution semantics and exceptional conditions."""

from .exceptions import (DETECTOR_PREFIX, DIVIDE_BY_ZERO, ILLEGAL_ADDRESS,
                         ILLEGAL_INSTRUCTION, INPUT_EXHAUSTED, MachineModelError,
                         TIMED_OUT, detector_exception)
from .state import (CowMemory, CowRegisters, Fingerprint, MachineState,
                    Status, TraceEntry, initial_state, state_contains_err)
from .decode import (DecodedInstruction, DecodedProgram, clear_decode_cache,
                     decoded_program)
from .executor import (ExecutionConfig, Executor, SymbolicValueEncountered,
                       concrete_step, concrete_step_legacy, run_concrete,
                       run_concrete_legacy, run_concrete_until)

__all__ = [
    "DETECTOR_PREFIX", "DIVIDE_BY_ZERO", "ILLEGAL_ADDRESS", "ILLEGAL_INSTRUCTION",
    "INPUT_EXHAUSTED", "MachineModelError", "TIMED_OUT", "detector_exception",
    "CowMemory", "CowRegisters", "Fingerprint",
    "MachineState", "Status", "TraceEntry", "initial_state", "state_contains_err",
    "DecodedInstruction", "DecodedProgram", "clear_decode_cache", "decoded_program",
    "ExecutionConfig", "Executor", "SymbolicValueEncountered",
    "concrete_step", "concrete_step_legacy", "run_concrete",
    "run_concrete_legacy", "run_concrete_until",
]
