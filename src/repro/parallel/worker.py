"""Worker-side entry points of the parallel campaign runner.

Each pool worker is initialised once with the campaign and query specs and
keeps the rebuilt objects — plus a per-process
:class:`~repro.core.search.SearchResultCache` shared across every chunk and
task the worker processes — in module globals.  The work functions are
module-level so they are picklable under every multiprocessing start method.

Chunks are identified by their submission index; workers echo the index back
with their results — plus a snapshot of their cache statistics, tagged with
the process name so the parent can aggregate the final per-worker counters —
and the parent merges out-of-order completions into a deterministic,
submission-ordered report.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from ..core.campaign import InjectionResult, SymbolicCampaign
from ..core.queries import SearchQuery
from ..core.search import CacheStatistics, SearchResultCache
from ..core.tasks import SearchTask, TaskResult, TaskRunner
from ..errors.injector import Injection
from ..obs import TelemetrySnapshot
from .spec import CacheSpec, CampaignSpec, QuerySpec

#: A worker's counters at the end of one work unit: (process name,
#: cumulative cache statistics, telemetry snapshot or None).  Cache counters
#: are monotonic, so the parent keeps the latest snapshot per process and
#: sums them when the pool drains; the telemetry snapshot is merged into
#: the coordinator hub the same way (events drained, metrics latest-wins).
CacheSnapshot = Tuple[str, CacheStatistics, Optional[TelemetrySnapshot]]

#: Per-process worker context, populated by :func:`initialize_worker`.
_WORKER: Dict[str, object] = {}


def initialize_worker(campaign_spec: CampaignSpec, query_spec: QuerySpec,
                      max_errors_per_task: int = 10,
                      wall_clock_per_task: Optional[float] = None,
                      cache_spec: Optional[CacheSpec] = None) -> None:
    """Pool initializer: rebuild the campaign, query and cache once.

    *cache_spec* selects the worker's search-result cache: the default
    per-process LRU, or a shared on-disk cache every worker opens (each
    process gets its own connection — sqlite handles do not survive fork).
    """
    # Always replace the inherited hub: under fork a child would otherwise
    # share the coordinator's open sink file.  Worker events buffer locally
    # and ship with each work unit's snapshot instead.
    _obs.activate_worker(campaign_spec.telemetry)
    campaign = campaign_spec.build()
    _WORKER["campaign"] = campaign
    _WORKER["query"] = query_spec.build()
    _WORKER["cache"] = (cache_spec or CacheSpec()).build()
    _WORKER["task_runner"] = TaskRunner(
        campaign, max_errors_per_task=max_errors_per_task,
        wall_clock_per_task=wall_clock_per_task)


def _context() -> Tuple[SymbolicCampaign, SearchQuery, SearchResultCache]:
    try:
        return (_WORKER["campaign"], _WORKER["query"], _WORKER["cache"])
    except KeyError:  # pragma: no cover - indicates a mis-built pool
        raise RuntimeError("worker used before initialize_worker ran") from None


def _cache_snapshot(cache: SearchResultCache) -> CacheSnapshot:
    stats = cache.statistics
    return (multiprocessing.current_process().name,
            CacheStatistics(hits=stats.hits, misses=stats.misses,
                            stores=stats.stores, evictions=stats.evictions),
            _obs.get().snapshot())


def run_injection_chunk(payload: Tuple[int, Tuple[Injection, ...]],
                        ) -> Tuple[int, List[InjectionResult], CacheSnapshot]:
    """Run one chunk of injection experiments.

    Returns (chunk index, results, cache snapshot).
    """
    index, injections = payload
    campaign, query, cache = _context()
    with _obs.get().span("worker.chunk", chunk=index,
                         injections=len(injections)):
        results = [campaign.run_injection(injection, query,
                                          result_cache=cache)
                   for injection in injections]
    return index, results, _cache_snapshot(cache)


def run_search_task(payload: Tuple[int, SearchTask],
                    ) -> Tuple[int, TaskResult, CacheSnapshot]:
    """Run one search task under its per-task caps (paper Section 6.1)."""
    index, task = payload
    _context()
    runner: TaskRunner = _WORKER["task_runner"]  # type: ignore[assignment]
    cache: SearchResultCache = _WORKER["cache"]  # type: ignore[assignment]
    with _obs.get().span("worker.task", task=index):
        result = runner.run_task(task, _WORKER["query"], result_cache=cache)
    return index, result, _cache_snapshot(cache)
