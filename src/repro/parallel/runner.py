"""Parallel campaign execution (paper Section 6.1, "Running Time").

The paper runs its symbolic fault-injection campaigns as independent search
tasks distributed over a cluster.  This module reproduces that execution
model on a single host with a :mod:`multiprocessing` worker pool:

* the injection sweep is split into chunks (:func:`~repro.core.tasks.
  chunk_injections`), each chunk a self-contained unit of work;
* a pool of workers — each initialised once with the campaign and query
  specs — executes chunks as they become free (dynamic load balancing via
  ``imap_unordered``);
* results are merged back in submission order, so a parallel run produces a
  :class:`~repro.core.campaign.CampaignResult` with exactly the same
  results, in the same order, as the serial sweep.

Determinism: each injection experiment is a pure function of the campaign
configuration and the injection, so sharding cannot change any individual
result; the submission-ordered merge makes the aggregate identical too.
Only wall-clock fields (`elapsed_seconds`, per-search timings) and searches
bounded by a *wall-clock* budget may differ between runs — the same caveat
the paper's 30-minute per-task cap carries on a loaded cluster.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs as _obs
from ..core.campaign import (CampaignResult, ExecutionStrategy,
                             InjectionResult, ProgressCallback,
                             SerialExecutionStrategy, SymbolicCampaign)
from ..core.queries import SearchQuery
from ..core.search import CacheStatistics
from ..core.tasks import (SearchTask, SerialTaskStrategy, TaskCampaignReport,
                          TaskExecutionStrategy, TaskResult, TaskRunner,
                          chunk_injections, default_chunk_size)
from ..errors.injector import Injection
from .spec import CacheSpec, CampaignSpec, QuerySpec
from .worker import initialize_worker, run_injection_chunk, run_search_task


@dataclass
class ParallelConfig:
    """Tunable parameters of the worker-pool runner.

    Attributes:
        workers: size of the process pool; ``workers <= 1`` falls back to the
            serial in-process path (no pool is created).
        chunk_size: injections per unit of work; ``None`` picks a heuristic
            of a few chunks per worker (small enough to balance load, large
            enough to amortise dispatch overhead).
        start_method: multiprocessing start method (``"fork"``, ``"spawn"``,
            ``"forkserver"``); ``None`` uses the platform default.
        cache: recipe for each worker's search-result cache; ``None`` keeps
            the classic per-process cache, ``CacheSpec.shared(path)`` makes
            every worker reuse one on-disk cache.
    """

    workers: int = 2
    chunk_size: Optional[int] = None
    start_method: Optional[str] = None
    cache: Optional[CacheSpec] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def resolve_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return default_chunk_size(total, self.workers)

    def context(self):
        return multiprocessing.get_context(self.start_method)


def _merge_cache_statistics(worker_stats: Dict[str, "CacheStatistics"],
                            ) -> CacheStatistics:
    """Sum the final per-worker cache counters into one aggregate."""
    total = CacheStatistics()
    for stats in worker_stats.values():
        total.accumulate(stats)
    return total


def _check_query_consistency(query: Optional[SearchQuery],
                             query_spec: QuerySpec) -> SearchQuery:
    """Guard against the spec and the in-process query drifting apart.

    Workers rebuild the query from *query_spec*; if the caller also holds a
    live query it must describe the same predicate, otherwise the parallel
    run would silently answer a different question than the serial one.
    """
    built = query_spec.build()
    if query is not None and query.description != built.description:
        raise ValueError(
            f"query spec builds {built.description!r} but the campaign was "
            f"asked to search for {query.description!r}; pass a matching "
            f"QuerySpec so workers search for the same predicate")
    return built


class ParallelExecutionStrategy(ExecutionStrategy):
    """Shard a campaign's injection sweep across a worker pool.

    Plugs into :meth:`SymbolicCampaign.run`; the query given to ``run`` must
    match *query_spec* (workers rebuild the predicate from the spec, since
    live queries do not pickle).
    """

    name = "parallel"

    def __init__(self, query_spec: QuerySpec,
                 config: Optional[ParallelConfig] = None) -> None:
        self.query_spec = query_spec
        self.config = config or ParallelConfig()
        #: SearchResultCache counters of the last run: aggregated across
        #: workers for pooled runs, from the sweep-wide cache for the serial
        #: fallback.  None until a run completes.
        self.cache_statistics: Optional[CacheStatistics] = None

    def run(self, campaign: SymbolicCampaign,
            injections: Sequence[Injection], query: SearchQuery,
            progress: Optional[ProgressCallback] = None,
            ) -> List[InjectionResult]:
        _check_query_consistency(query, self.query_spec)
        self.cache_statistics = None  # no stale counters if this run fails
        injections = list(injections)
        if self.config.workers <= 1 or len(injections) <= 1:
            cache = (self.config.cache or CacheSpec()).build()
            serial = SerialExecutionStrategy(result_cache=cache)
            serial.result_sink = self.result_sink
            serial.retain_results = self.retain_results
            results = serial.run(campaign, injections, query,
                                 progress=progress)
            self.cache_statistics = cache.statistics
            return results

        chunk_size = self.config.resolve_chunk_size(len(injections))
        chunks = chunk_injections(injections, chunk_size)
        payloads = list(enumerate(chunks))
        spec = CampaignSpec.from_campaign(campaign)
        merged: Dict[int, List[InjectionResult]] = {}
        worker_stats: Dict[str, CacheStatistics] = {}
        done_injections = 0
        with self.config.context().Pool(
                processes=min(self.config.workers, len(chunks)),
                initializer=initialize_worker,
                initargs=(spec, self.query_spec, 10, None,
                          self.config.cache)) as pool:
            for index, results, snapshot in pool.imap_unordered(
                    run_injection_chunk, payloads):
                # Streaming mode keeps an empty placeholder per chunk: the
                # merge below stays order-complete while the coordinator
                # retains nothing.
                merged[index] = results if self.retain_results else []
                worker_name, stats, telemetry = snapshot
                worker_stats[worker_name] = stats  # counters are monotonic
                _obs.get().absorb(telemetry)
                for injection, result in zip(chunks[index], results):
                    self.emit_result(injection, result)
                done_injections += len(results)
                if progress is not None and results:
                    progress(done_injections, len(injections), results[-1])
        self.cache_statistics = _merge_cache_statistics(worker_stats)
        # Deterministic merge: flatten in chunk-submission order.
        return [result for index in sorted(merged)
                for result in merged[index]]


class ParallelTaskStrategy(TaskExecutionStrategy):
    """Distribute whole search tasks (paper's cluster unit) over the pool."""

    name = "parallel"

    def __init__(self, query_spec: QuerySpec,
                 config: Optional[ParallelConfig] = None) -> None:
        self.query_spec = query_spec
        self.config = config or ParallelConfig()
        self.cache_statistics: Optional[CacheStatistics] = None

    def run(self, runner: TaskRunner, tasks: Sequence[SearchTask],
            query: SearchQuery,
            progress: Optional[Callable[[int, int, TaskResult], None]] = None,
            ) -> List[TaskResult]:
        _check_query_consistency(query, self.query_spec)
        self.cache_statistics = None
        tasks = list(tasks)
        if self.config.workers <= 1 or len(tasks) <= 1:
            cache = (self.config.cache or CacheSpec()).build()
            serial = SerialTaskStrategy(result_cache=cache)
            serial.retain_results = self.retain_results
            results = serial.run(runner, tasks, query, progress=progress)
            self.cache_statistics = cache.statistics
            return results

        spec = CampaignSpec.from_campaign(runner.campaign)
        payloads = list(enumerate(tasks))
        merged: Dict[int, TaskResult] = {}
        worker_stats: Dict[str, CacheStatistics] = {}
        with self.config.context().Pool(
                processes=min(self.config.workers, len(tasks)),
                initializer=initialize_worker,
                initargs=(spec, self.query_spec,
                          runner.max_errors_per_task,
                          runner.wall_clock_per_task,
                          self.config.cache)) as pool:
            for index, result, snapshot in pool.imap_unordered(run_search_task,
                                                               payloads):
                merged[index] = result if self.retain_results else None
                worker_name, stats, telemetry = snapshot
                worker_stats[worker_name] = stats
                _obs.get().absorb(telemetry)
                if progress is not None:
                    progress(len(merged), len(tasks), result)
        self.cache_statistics = _merge_cache_statistics(worker_stats)
        if not self.retain_results:
            return []
        return [merged[index] for index in sorted(merged)]


def run_campaign_parallel(campaign: SymbolicCampaign,
                          query_spec: QuerySpec,
                          injections: Optional[Sequence[Injection]] = None,
                          config: Optional[ParallelConfig] = None,
                          progress: Optional[ProgressCallback] = None,
                          ) -> CampaignResult:
    """Run a symbolic campaign on a worker pool.

    Produces a :class:`CampaignResult` equal (in results and ordering) to
    ``campaign.run(query, injections=...)`` with the query built from
    *query_spec*; see the module docstring for the determinism guarantees.
    """
    query = query_spec.build()
    strategy = ParallelExecutionStrategy(query_spec, config)
    return campaign.run(query, injections=injections, progress=progress,
                        strategy=strategy)


def run_tasks_parallel(runner: TaskRunner, tasks: Sequence[SearchTask],
                       query_spec: QuerySpec,
                       config: Optional[ParallelConfig] = None,
                       progress: Optional[Callable[[int, int, TaskResult],
                                                   None]] = None,
                       ) -> TaskCampaignReport:
    """Run decomposed search tasks on a worker pool (the paper's cluster)."""
    query = query_spec.build()
    strategy = ParallelTaskStrategy(query_spec, config)
    return runner.run(tasks, query, progress=progress, strategy=strategy)
