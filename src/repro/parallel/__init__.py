"""Parallel campaign execution: the paper's cluster runs on a worker pool.

Public surface:

* :class:`ParallelConfig` — pool size, chunk size, start method;
* :class:`CampaignSpec` / :class:`QuerySpec` — picklable recipes workers use
  to rebuild the campaign and query;
* :func:`run_campaign_parallel` / :func:`run_tasks_parallel` — one-call
  parallel equivalents of ``SymbolicCampaign.run`` and ``TaskRunner.run``;
* :class:`ParallelExecutionStrategy` / :class:`ParallelTaskStrategy` — the
  pluggable strategies behind them, for callers composing their own runs.
"""

from .runner import (ParallelConfig, ParallelExecutionStrategy,
                     ParallelTaskStrategy, run_campaign_parallel,
                     run_tasks_parallel)
from .spec import CacheSpec, CampaignSpec, QuerySpec, TaskSpec

__all__ = [
    "CacheSpec", "CampaignSpec", "ParallelConfig",
    "ParallelExecutionStrategy", "ParallelTaskStrategy", "QuerySpec",
    "TaskSpec", "run_campaign_parallel", "run_tasks_parallel",
]
