"""Picklable specifications for rebuilding campaigns inside workers.

Worker processes cannot receive a live :class:`~repro.core.campaign.
SymbolicCampaign` or :class:`~repro.core.queries.SearchQuery` directly: the
campaign carries an executor, and generated queries close over lambdas that
do not survive pickling (and must not, on spawn-based platforms).  Instead
the parent describes the experiment with two small picklable specs:

* :class:`CampaignSpec` — the campaign's constructor arguments (program,
  inputs, detectors, error class, execution config and search caps);
* :class:`QuerySpec` — either one of the pre-defined query kinds of the
  query generator (paper Section 5, "Supporting Tools") or a module-level
  factory callable plus arguments.

Each worker rebuilds the campaign and query once in its initializer and
reuses them for every chunk it processes, so the (cheap) reconstruction cost
is paid once per process, not once per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from .. import obs as _obs
from ..core.campaign import SymbolicCampaign
from ..core.queries import SearchQuery
from ..core.search import SearchResultCache
from ..detectors import DetectorSet, EMPTY_DETECTORS
from ..errors.models import ErrorClass, RegisterFileError
from ..faults.models import FaultModel
from ..isa.program import Program
from ..machine.executor import ExecutionConfig
from ..obs import TraceContext


@dataclass(frozen=True)
class CacheSpec:
    """A picklable recipe for a worker's search-result cache.

    ``kind="local"`` builds the classic per-process
    :class:`~repro.core.search.SearchResultCache`; ``kind="shared"`` opens
    the cross-process :class:`~repro.core.shared_cache.
    SharedSearchResultCache` at *path*, so every worker of a pool or
    distributed run reuses each other's completed searches.
    """

    kind: str = "local"
    path: Optional[str] = None
    max_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("local", "shared"):
            raise ValueError(f"unknown cache kind {self.kind!r}")
        if self.kind == "shared" and not self.path:
            raise ValueError("a shared cache needs a database path")

    @classmethod
    def shared(cls, path: str) -> "CacheSpec":
        return cls(kind="shared", path=path)

    def build(self):
        if self.kind == "shared":
            from ..core.shared_cache import SharedSearchResultCache
            return SharedSearchResultCache(self.path)
        return SearchResultCache(max_entries=self.max_entries)


@dataclass(frozen=True)
class TaskSpec:
    """A picklable recipe for the worker-side task runner's caps.

    Whole search tasks (paper Section 6.1: at most 10 errors, at most 30
    minutes each) execute inside workers, so the caps must travel with the
    campaign manifest; a worker rebuilds its
    :class:`~repro.core.tasks.TaskRunner` from this spec and honours the
    same caps the coordinator's runner would.
    """

    max_errors_per_task: int = 10
    wall_clock_per_task: Optional[float] = None
    #: Coordinator-side trace context so worker task spans parent under the
    #: campaign trace; ``None`` when telemetry is off.
    telemetry: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.max_errors_per_task < 1:
            raise ValueError(f"max_errors_per_task must be >= 1, "
                             f"got {self.max_errors_per_task}")
        if (self.wall_clock_per_task is not None
                and self.wall_clock_per_task <= 0):
            raise ValueError(f"wall_clock_per_task must be positive, "
                             f"got {self.wall_clock_per_task}")

    @classmethod
    def from_runner(cls, runner) -> "TaskSpec":
        """Snapshot a :class:`~repro.core.tasks.TaskRunner`'s caps."""
        return cls(max_errors_per_task=runner.max_errors_per_task,
                   wall_clock_per_task=runner.wall_clock_per_task,
                   telemetry=_obs.get().context())


@dataclass(frozen=True)
class QuerySpec:
    """A picklable recipe for a :class:`SearchQuery`.

    Exactly one of *kind* (a pre-defined query-generator category) or
    *factory* (an importable module-level callable returning a SearchQuery)
    must be set.
    """

    kind: Optional[str] = None
    golden_output: Optional[Tuple] = None
    expected_value: Optional[int] = None
    factory: Optional[Callable[..., SearchQuery]] = None
    factory_args: Tuple = ()

    def __post_init__(self) -> None:
        if (self.kind is None) == (self.factory is None):
            raise ValueError("exactly one of kind= or factory= must be given")

    @classmethod
    def predefined(cls, kind: str,
                   golden_output: Optional[Sequence] = None,
                   expected_value: Optional[int] = None) -> "QuerySpec":
        """Spec for one of the query generator's pre-defined kinds."""
        golden = tuple(golden_output) if golden_output is not None else None
        return cls(kind=kind, golden_output=golden,
                   expected_value=expected_value)

    @classmethod
    def from_factory(cls, factory: Callable[..., SearchQuery],
                     *args) -> "QuerySpec":
        """Spec wrapping a module-level query factory (e.g. for tests)."""
        return cls(factory=factory, factory_args=tuple(args))

    def build(self) -> SearchQuery:
        if self.factory is not None:
            return self.factory(*self.factory_args)
        from ..frontend.querygen import generate_query
        return generate_query(self.kind, golden_output=self.golden_output,
                              expected_value=self.expected_value)


@dataclass
class CampaignSpec:
    """A picklable snapshot of a :class:`SymbolicCampaign`'s configuration."""

    program: Program
    input_values: Tuple[int, ...] = ()
    memory: Dict[int, int] = field(default_factory=dict)
    detectors: DetectorSet = EMPTY_DETECTORS
    error_class: ErrorClass = field(default_factory=RegisterFileError)
    #: Pluggable fault model (:mod:`repro.faults`); FaultModels are small
    #: frozen dataclasses, so they ride the spec (and thus every broker
    #: manifest) unchanged, like the FaultSpecs they plan.
    fault_model: Optional[FaultModel] = None
    execution_config: ExecutionConfig = field(default_factory=ExecutionConfig)
    max_solutions_per_injection: int = 10
    max_states_per_injection: int = 50_000
    wall_clock_per_injection: Optional[float] = None
    #: Search-state dedup; ``False`` for the parity census (see
    #: :class:`~repro.core.campaign.SymbolicCampaign`).
    deduplicate_states: bool = True
    #: ISA frontend name the program was retargeted through (``None`` = the
    #: native SymPLFIED build); plain metadata, so it pickles through chunks,
    #: task payloads and broker manifests like ``fault_model`` does.
    isa: Optional[str] = None
    #: Campaign-scoped trace context (trace id + the coordinator span the
    #: worker's spans should parent under); ``None`` when telemetry is off.
    #: Rides every carrier the spec rides — chunk payloads, broker
    #: manifests — and never reaches :class:`SymbolicCampaign` itself.
    telemetry: Optional[TraceContext] = None

    @classmethod
    def from_campaign(cls, campaign: SymbolicCampaign) -> "CampaignSpec":
        return cls(
            program=campaign.program,
            input_values=campaign.input_values,
            memory=dict(campaign.memory),
            detectors=campaign.detectors,
            error_class=campaign.error_class,
            fault_model=campaign.fault_model,
            execution_config=campaign.execution_config,
            max_solutions_per_injection=campaign.max_solutions_per_injection,
            max_states_per_injection=campaign.max_states_per_injection,
            wall_clock_per_injection=campaign.wall_clock_per_injection,
            deduplicate_states=campaign.deduplicate_states,
            isa=campaign.isa,
            telemetry=_obs.get().context())

    def build(self) -> SymbolicCampaign:
        return SymbolicCampaign(
            self.program,
            input_values=self.input_values,
            memory=self.memory,
            detectors=self.detectors,
            error_class=self.error_class,
            fault_model=self.fault_model,
            execution_config=self.execution_config,
            max_solutions_per_injection=self.max_solutions_per_injection,
            max_states_per_injection=self.max_states_per_injection,
            wall_clock_per_injection=self.wall_clock_per_injection,
            deduplicate_states=self.deduplicate_states,
            isa=self.isa)
