"""The picklable unit of the pluggable fault-model subsystem.

A :class:`FaultSpec` is one planned fault: *where* to corrupt (inherited
from :class:`~repro.errors.injector.Injection` — breakpoint, dynamic
occurrence, target location), *what* to write there (``value``, the
symbolic ``err`` by default, or any concrete integer a future model may
choose) and *which model* planned it.

Because a ``FaultSpec`` **is** an ``Injection``, it travels through every
existing carrier unchanged: injection chunks shipped to pool workers,
:class:`~repro.core.tasks.SearchTask` payloads, the filesystem and socket
broker queues, and checkpoint journals all pickle and merge FaultSpecs
exactly like plain injections — the four execution backends (serial, pool,
distributed, tcp) need no spec-specific code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors.injector import Injection
from ..isa.values import ERR, Value, is_err


@dataclass(frozen=True)
class FaultSpec(Injection):
    """One planned fault: an injection point plus the value to write.

    Attributes (beyond :class:`Injection`'s):
        value: what the corrupted location receives — ``ERR`` for the
            paper's abstract error symbol, or a concrete integer for
            models that corrupt with specific values.
        model: name of the :class:`~repro.faults.models.FaultModel` that
            planned this spec (identifies the space the spec was drawn
            from in reports and checkpoint journals).
    """

    value: Value = ERR
    model: str = ""

    def label(self) -> str:
        base = super().label()
        if self.model:
            base = f"[{self.model}] {base}"
        if not is_err(self.value):
            base += f" value={self.value!r}"
        return base


@dataclass(frozen=True)
class BurstFaultSpec(FaultSpec):
    """*k* simultaneous faults applied together at one breakpoint.

    The paper's multi-error extension: instead of one corruption per
    experiment, an ordered tuple of component :class:`FaultSpec`\\ s is
    applied in one shot when the breakpoint is reached — every component
    shares this spec's ``breakpoint_pc``/``occurrence``, so the whole burst
    is activated by the very next instruction, exactly like a single fault.

    Attributes (beyond :class:`FaultSpec`'s):
        components: the component faults, **in application order**.  The
            order is part of the spec's identity: it survives pickling,
            broker manifests and checkpoint journals unchanged (see the
            round-trip property in ``tests/test_burst_parity.py``), and it
            is the order :func:`~repro.machine.executor.apply_fault_set`
            writes the corruptions in.

    ``target`` mirrors the first component's target (so carriers and the
    results warehouse that index on ``(breakpoint_pc, target)`` keep
    working); :meth:`label` spells out every component so two bursts at
    one site never collide in a checkpoint journal.
    """

    components: Tuple[FaultSpec, ...] = ()

    def label(self) -> str:
        where = " + ".join(repr(component.target)
                           for component in self.components) \
            or repr(self.target)
        base = f"pc={self.breakpoint_pc}#{self.occurrence} -> {where}"
        if self.description:
            base += f" ({self.description})"
        if self.model:
            base = f"[{self.model}] {base}"
        return base


@dataclass(frozen=True)
class BitFlipFaultSpec(FaultSpec):
    """One concrete single-bit corruption of a register or memory word.

    Unlike every other spec, the written value is not known statically: the
    corruption is a read-modify-write — the current contents of ``target``
    XOR ``1 << bit`` (an ``err`` already sitting there stays ``err``).
    :func:`~repro.machine.executor.apply_fault_set` performs the read and
    the flip through the same CoW write path all other corruptions use, so
    the symbolic campaign and the concrete simulator inject the *identical*
    flipped word at the identical dynamic point.
    """

    bit: int = 0

    def label(self) -> str:
        return f"{super().label()} bit={self.bit}"
