"""The picklable unit of the pluggable fault-model subsystem.

A :class:`FaultSpec` is one planned fault: *where* to corrupt (inherited
from :class:`~repro.errors.injector.Injection` — breakpoint, dynamic
occurrence, target location), *what* to write there (``value``, the
symbolic ``err`` by default, or any concrete integer a future model may
choose) and *which model* planned it.

Because a ``FaultSpec`` **is** an ``Injection``, it travels through every
existing carrier unchanged: injection chunks shipped to pool workers,
:class:`~repro.core.tasks.SearchTask` payloads, the filesystem and socket
broker queues, and checkpoint journals all pickle and merge FaultSpecs
exactly like plain injections — the four execution backends (serial, pool,
distributed, tcp) need no spec-specific code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors.injector import Injection
from ..isa.values import ERR, Value, is_err


@dataclass(frozen=True)
class FaultSpec(Injection):
    """One planned fault: an injection point plus the value to write.

    Attributes (beyond :class:`Injection`'s):
        value: what the corrupted location receives — ``ERR`` for the
            paper's abstract error symbol, or a concrete integer for
            models that corrupt with specific values.
        model: name of the :class:`~repro.faults.models.FaultModel` that
            planned this spec (identifies the space the spec was drawn
            from in reports and checkpoint journals).
    """

    value: Value = ERR
    model: str = ""

    def label(self) -> str:
        base = super().label()
        if self.model:
            base = f"[{self.model}] {base}"
        if not is_err(self.value):
            base += f" value={self.value!r}"
        return base
