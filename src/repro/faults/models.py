"""Pluggable fault models: how an injection space is enumerated or sampled.

The paper's error model — single transient errors in registers, memory and
control flow (Section 3.3) — was previously hard-wired into the campaign
layer as a fixed register sweep.  A :class:`FaultModel` makes the model a
first-class, picklable object: it *enumerates* the full injection space of
a program (every :class:`~repro.faults.spec.FaultSpec` of its class) or
*samples* a deterministic subset under a seed, and the campaign plans its
sweep from whichever model it is given.

Six concrete models ship here, selected on the CLI by
``repro analyze --fault-model
{register,memory,control,operand,burst,bitflip}``:

* :class:`RegisterValueFault` — ``err`` in a register used by each
  instruction (the paper's Section 6 campaign, extracted from the old
  fixed sweep);
* :class:`MemoryCellFault` — ``err`` in a data-segment memory word,
  placed just before each load so the corruption can be consumed;
* :class:`ControlFlowFault` — a corrupted program counter at
  control-transfer instructions (branch/jump/call targets);
* :class:`InstructionOperandFault` — ``err`` in the source operands an
  instruction reads (bus/decode-style operand corruption);
* :class:`BurstFault` — *k* simultaneous corruptions per experiment
  (the paper's multi-error extension), composed from the base models'
  spaces into :class:`~repro.faults.spec.BurstFaultSpec` tuples;
* :class:`BitFlipFault` — concrete single-bit corruptions over the same
  injection addresses the symbolic models enumerate, the Monte-Carlo leg
  of the symbolic-vs-bit-flip parity study (Section 6's comparison).

Future models (timing errors, multi-bit cell faults, ...) plug in by
subclassing :class:`FaultModel` and registering in :data:`FAULT_MODELS`;
everything downstream — planning, chunking, the four execution backends,
checkpointing — operates on the produced FaultSpecs and needs no change.
The authoring walkthrough (with burst/bitflip as worked examples) lives in
``docs/fault-models.md``.
"""

from __future__ import annotations

import itertools
import random
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..constraints import Location
from ..errors.injector import registers_used_at
from ..isa.instructions import Category
from ..isa.program import Program
from .spec import BitFlipFaultSpec, BurstFaultSpec, FaultSpec


def deterministic_sample(space: Sequence[FaultSpec], k: int,
                         seed: Optional[int] = None) -> List[FaultSpec]:
    """An order-preserving, seed-deterministic sample of *k* specs.

    The same ``(space, k, seed)`` always yields the same subset in the
    same (enumeration) order, so a sampled campaign planned once by the
    coordinator is byte-identical no matter which backend executes it.
    ``seed=None`` means seed 0 — sampling is *never* nondeterministic.
    A *k* larger than the space clamps to the full space with a one-line
    warning (asking for "at most k" of a smaller space is well-defined).
    """
    if k < 1:
        raise ValueError(f"sample size must be >= 1, got {k}")
    space = list(space)
    if k >= len(space):
        if k > len(space):
            warnings.warn(
                f"sample size {k} exceeds the enumerated fault space "
                f"({len(space)} injections); sweeping the full space",
                RuntimeWarning, stacklevel=2)
        return space
    rng = random.Random(0 if seed is None else seed)
    chosen = sorted(rng.sample(range(len(space)), k))
    return [space[index] for index in chosen]


class FaultModel:
    """A named, picklable category of transient hardware faults.

    This is the seam every new error scenario plugs into (authoring guide:
    ``docs/fault-models.md``).  Subclasses implement :meth:`enumerate`;
    :meth:`sample` and :meth:`plan` are derived.  The contract:

    * **Enumeration is pure.**  :meth:`enumerate` must be a deterministic
      function of ``(program, memory, pcs)`` — no wall clock, no unseeded
      randomness, no filesystem — so every backend, worker and resumed
      checkpoint sees the identical space in the identical order.
    * **Specs are picklable and frozen.**  The produced
      :class:`~repro.faults.spec.FaultSpec`\\ s ride every existing
      carrier unchanged (injection chunks, task payloads, broker
      manifests, checkpoint journals); equality must survive a pickle
      round-trip, and :meth:`~repro.errors.injector.Injection.label` must
      be unique within the space (it keys checkpoint journals).
    * **Models are small frozen dataclasses.**  The model instance itself
      travels inside :class:`~repro.parallel.spec.CampaignSpec` and is
      content-digested into checkpoint headers, so configuration (e.g.
      :attr:`BurstFault.k`) pins the campaign identity.

    Register instances in :data:`FAULT_MODELS` to expose them on the CLI
    (``repro analyze --fault-model NAME``); planning, sampling, all four
    execution backends and the results warehouse then work on the new
    specs with no further changes.
    """

    name: str = "abstract"

    def enumerate(self, program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        """The full injection space of this model for *program*.

        *memory* is the campaign's loader-initialised data segment (models
        that corrupt memory cells draw their addresses from it); *pcs*
        optionally restricts the sweep to a subset of code addresses (used
        by the search-task decomposition).
        """
        raise NotImplementedError

    def sample(self, program: Program, k: int, seed: Optional[int] = None,
               memory: Optional[Dict[int, int]] = None,
               pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        """A deterministic k-spec sample of the enumerated space."""
        return deterministic_sample(
            self.enumerate(program, memory=memory, pcs=pcs), k, seed)

    def plan(self, program: Program,
             memory: Optional[Dict[int, int]] = None,
             sample: Optional[int] = None, seed: Optional[int] = None,
             pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        """The sweep a campaign should run: everything, or a seeded sample."""
        if sample is None:
            return self.enumerate(program, memory=memory, pcs=pcs)
        return self.sample(program, sample, seed=seed, memory=memory, pcs=pcs)

    def _addresses(self, program: Program,
                   pcs: Optional[Sequence[int]]) -> Sequence[int]:
        return range(len(program)) if pcs is None else pcs


@dataclass(frozen=True)
class RegisterValueFault(FaultModel):
    """``err`` in a register at the instruction that uses it.

    The current campaign behaviour, extracted: for every static
    instruction, one fault per register selected by *policy* (``"used"``
    reproduces the paper's activation-guaranteed Section 6 sweep).
    """

    policy: str = "used"
    name = "register"

    def _description(self, register: int) -> str:
        return f"register-file error in ${register}"

    def enumerate(self, program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        specs: List[FaultSpec] = []
        for pc in self._addresses(program, pcs):
            for register in registers_used_at(program, pc, self.policy):
                specs.append(FaultSpec(
                    breakpoint_pc=pc, target=Location.register(register),
                    description=self._description(register),
                    model=self.name))
        return specs


@dataclass(frozen=True)
class MemoryCellFault(FaultModel):
    """``err`` in a main-memory word (data-segment cell corruption).

    When the program has a loader-initialised data segment, each known
    cell is corrupted immediately before each load instruction (so the
    corruption can be consumed; unread cells exercise *latent* errors —
    see the ``latent-err`` query).  *max_cells_per_site* caps the cells
    swept per load for large segments.  Programs without a data segment
    fall back to corrupting each load's destination register right after
    the load — equivalent to an error on the memory/cache bus feeding it.

    Caveat (shared with the legacy ``MemoryError`` class this extracts):
    the bus fallback breaks at the first dynamic arrival at ``pc + 1``,
    which for a load whose successor is also a branch target may happen
    before the load ever executes — the injection then degenerates to a
    plain register error; and when ``pc + 1`` is never reached the
    experiment is reported as not activated.
    """

    max_cells_per_site: Optional[int] = None
    name = "memory"

    def enumerate(self, program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        addresses = list(self._addresses(program, pcs))
        load_pcs = [pc for pc in addresses
                    if (instruction := program.fetch(pc)) is not None
                    and instruction.category is Category.LOAD]
        cells = sorted(memory) if memory else []
        if self.max_cells_per_site is not None:
            cells = cells[:self.max_cells_per_site]
        specs: List[FaultSpec] = []
        if cells:
            # No loads at all (straight-line data init): corrupt at entry.
            sites = load_pcs or addresses[:1]
            for pc in sites:
                for address in cells:
                    specs.append(FaultSpec(
                        breakpoint_pc=pc, target=Location.memory(address),
                        description=f"memory word {address} holds err",
                        model=self.name))
        else:
            for pc in load_pcs:
                instruction = program.fetch(pc)
                specs.append(FaultSpec(
                    breakpoint_pc=pc + 1,
                    target=Location.register(instruction.operands[0]),
                    description="memory word feeding this load (via bus)",
                    model=self.name))
        return specs


@dataclass(frozen=True)
class ControlFlowFault(FaultModel):
    """A corrupted program counter at control-transfer points.

    The PC is replaced with ``err`` just before each branch/jump/call, so
    the symbolic executor forks over every feasible landing site (or the
    illegal-instruction outcome), reproducing the paper's control-flow
    error semantics.  A program without any control transfer degrades to
    an instruction-fetch error at every instruction.
    """

    name = "control"

    _TRANSFERS = (Category.BRANCH, Category.JUMP, Category.CALL,
                  Category.JUMP_REGISTER)

    def enumerate(self, program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        addresses = [pc for pc in self._addresses(program, pcs)
                     if program.fetch(pc) is not None]
        transfer_pcs = [pc for pc in addresses
                        if program.fetch(pc).category in self._TRANSFERS]
        return [FaultSpec(breakpoint_pc=pc, target=Location.pc(),
                          description="corrupted control flow (err PC)",
                          model=self.name)
                for pc in (transfer_pcs or addresses)]


@dataclass(frozen=True)
class InstructionOperandFault(RegisterValueFault):
    """``err`` in the source operands an instruction reads.

    Operand corruption on the read path (Table 1's bus/decode rows):
    the register sweep restricted to each instruction's *read* operands,
    corrupted immediately before the instruction executes so the wrong
    operand is guaranteed to be consumed.
    """

    policy: str = "reads"
    name = "operand"

    def _description(self, register: int) -> str:
        return f"operand ${register} corrupted"


@dataclass(frozen=True)
class BurstFault(FaultModel):
    """*k* simultaneous corruptions per experiment (multi-error bursts).

    The paper's multi-error extension: where the single-fault models place
    one corruption per experiment, a burst applies *k* of them in one shot.
    The space is composed from the enumerated spaces of *base_models*:
    component specs are grouped by ``(breakpoint_pc, occurrence)`` — so
    every component of a burst is activated together by the very next
    instruction — and each k-combination of distinct targets at one site
    becomes one :class:`~repro.faults.spec.BurstFaultSpec`.

    Determinism: components keep base-model enumeration order, sites are
    swept in address order, and combinations come out in
    :func:`itertools.combinations` order — all pure functions of the
    program, so every backend plans the identical burst space and
    ``--sample``/``--seed`` pick the identical subset
    (seed-deterministic pairing).  ``--burst-k`` on the CLI rebuilds the
    registered instance with a different *k*.
    """

    k: int = 2
    #: Registered base models whose spaces the bursts are drawn from.  Any
    #: registered name works (cross-model bursts included); the default
    #: composes register-file faults, the paper's Section 6 space.
    base_models: Tuple[str, ...] = ("register",)
    name = "burst"

    def enumerate(self, program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        if self.k < 2:
            raise ValueError(f"a burst needs k >= 2 simultaneous faults, "
                             f"got k={self.k}")
        if self.name in self.base_models:
            raise ValueError("a burst cannot compose itself; pick base "
                             "models from the other registered models")
        by_site: Dict[Tuple[int, int], List[FaultSpec]] = {}
        for base_name in self.base_models:
            base = fault_model(base_name)
            for spec in base.enumerate(program, memory=memory, pcs=pcs):
                site = (spec.breakpoint_pc, spec.occurrence)
                by_site.setdefault(site, []).append(spec)
        specs: List[FaultSpec] = []
        for site in sorted(by_site):
            # Distinct targets only: corrupting one location twice in the
            # same burst degenerates to a single fault.
            components: List[FaultSpec] = []
            seen_targets = set()
            for spec in by_site[site]:
                key = (spec.target.kind, spec.target.index)
                if key not in seen_targets:
                    seen_targets.add(key)
                    components.append(spec)
            for combo in itertools.combinations(components, self.k):
                specs.append(BurstFaultSpec(
                    breakpoint_pc=site[0], occurrence=site[1],
                    target=combo[0].target,
                    description=f"burst of {self.k} simultaneous faults",
                    model=self.name, components=combo))
        return specs


@dataclass(frozen=True)
class BitFlipFault(FaultModel):
    """Concrete single-bit flips over the symbolic models' addresses.

    The Monte-Carlo leg of the parity study: for every injection address
    the *base_models* enumerate (register words at each instruction that
    uses them, and — through the memory model — data-segment cells before
    each load), one spec per bit of the word.  The corruption is a
    read-modify-write XOR of ``1 << bit`` at the breakpoint, so a bitflip
    campaign is the classic random-FI experiment the paper validates
    against (Section 6.3) swept over *exactly* the addresses the symbolic
    ``err`` campaign covers — which is what makes the symbolic-vs-bit-flip
    coverage comparison (``repro report --parity`` /
    ``repro analyze --compare-concrete``) an apples-to-apples join.
    """

    word_bits: int = 32
    base_models: Tuple[str, ...] = ("register", "memory")
    name = "bitflip"

    def enumerate(self, program: Program,
                  memory: Optional[Dict[int, int]] = None,
                  pcs: Optional[Sequence[int]] = None) -> List[FaultSpec]:
        if self.name in self.base_models:
            raise ValueError("bitflip cannot compose itself; pick base "
                             "models from the other registered models")
        specs: List[FaultSpec] = []
        for base_name in self.base_models:
            base = fault_model(base_name)
            for spec in base.enumerate(program, memory=memory, pcs=pcs):
                for bit in range(self.word_bits):
                    specs.append(BitFlipFaultSpec(
                        breakpoint_pc=spec.breakpoint_pc,
                        occurrence=spec.occurrence,
                        target=spec.target,
                        description="single-bit flip",
                        model=self.name, bit=bit))
        return specs


#: The pre-defined fault models offered on the CLI (`--fault-model`).
FAULT_MODELS: Dict[str, FaultModel] = {
    "register": RegisterValueFault(),
    "memory": MemoryCellFault(),
    "control": ControlFlowFault(),
    "operand": InstructionOperandFault(),
    "burst": BurstFault(),
    "bitflip": BitFlipFault(),
}


def fault_model(name: str) -> FaultModel:
    """Look up a pre-defined fault model by name."""
    try:
        return FAULT_MODELS[name]
    except KeyError:
        raise ValueError(f"unknown fault model {name!r}; available: "
                         f"{sorted(FAULT_MODELS)}") from None
