"""Pluggable fault models (the seam every new error scenario plugs into).

Public surface:

* :class:`FaultSpec` — the picklable unit: one planned fault (injection
  point + value + originating model), carried unchanged by all four
  execution backends;
* :class:`FaultModel` and the concrete models —
  :class:`RegisterValueFault`, :class:`MemoryCellFault`,
  :class:`ControlFlowFault`, :class:`InstructionOperandFault`;
* :data:`FAULT_MODELS` / :func:`fault_model` — the registry behind
  ``repro analyze --fault-model``;
* :func:`deterministic_sample` — seed-deterministic subsetting of an
  enumerated injection space.
"""

from .models import (FAULT_MODELS, ControlFlowFault, FaultModel,
                     InstructionOperandFault, MemoryCellFault,
                     RegisterValueFault, deterministic_sample, fault_model)
from .spec import FaultSpec

__all__ = [
    "FAULT_MODELS", "ControlFlowFault", "FaultModel", "FaultSpec",
    "InstructionOperandFault", "MemoryCellFault", "RegisterValueFault",
    "deterministic_sample", "fault_model",
]
