"""Pluggable fault models (the seam every new error scenario plugs into).

Public surface:

* :class:`FaultSpec` — the picklable unit: one planned fault (injection
  point + value + originating model), carried unchanged by all four
  execution backends;
* :class:`BurstFaultSpec` / :class:`BitFlipFaultSpec` — composite and
  concrete-bit-flip specs: an ordered tuple of simultaneous component
  faults, and a read-modify-write single-bit corruption;
* :class:`FaultModel` and the six concrete models —
  :class:`RegisterValueFault`, :class:`MemoryCellFault`,
  :class:`ControlFlowFault`, :class:`InstructionOperandFault`,
  :class:`BurstFault` (k simultaneous faults per experiment) and
  :class:`BitFlipFault` (the Monte-Carlo leg of the parity study);
* :data:`FAULT_MODELS` / :func:`fault_model` — the registry behind
  ``repro analyze --fault-model``;
* :func:`deterministic_sample` — seed-deterministic subsetting of an
  enumerated injection space.

The authoring guide — how to subclass :class:`FaultModel`, keep specs
picklable, register, and what the carriers guarantee — is
``docs/fault-models.md``.
"""

from .models import (FAULT_MODELS, BitFlipFault, BurstFault, ControlFlowFault,
                     FaultModel, InstructionOperandFault, MemoryCellFault,
                     RegisterValueFault, deterministic_sample, fault_model)
from .spec import BitFlipFaultSpec, BurstFaultSpec, FaultSpec

__all__ = [
    "FAULT_MODELS", "BitFlipFault", "BitFlipFaultSpec", "BurstFault",
    "BurstFaultSpec", "ControlFlowFault", "FaultModel", "FaultSpec",
    "InstructionOperandFault", "MemoryCellFault", "RegisterValueFault",
    "deterministic_sample", "fault_model",
]
