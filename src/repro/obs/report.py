"""'Where did the time go' analysis over a telemetry event log.

Consumes the JSONL file written by ``--telemetry``: span events carry
durations, the final ``metrics`` record carries merged counters and
histograms.  Rendered by ``repro report --telemetry PATH``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .telemetry import Histogram


def _span_table(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    by_name: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        duration = float(event.get("duration", 0.0))
        row = by_name.setdefault(event["name"], {
            "name": event["name"], "count": 0, "total": 0.0, "max": 0.0})
        row["count"] += 1
        row["total"] += duration
        row["max"] = max(row["max"], duration)
    return sorted(by_name.values(), key=lambda row: -row["total"])


def _final_metrics(events: Sequence[Dict[str, Any]]
                   ) -> Dict[str, Any]:
    metrics: Dict[str, Any] = {}
    for event in events:
        if event.get("type") == "metrics":
            metrics = event  # last one wins: it is the campaign-final record
    return metrics


def format_telemetry_report(events: Sequence[Dict[str, Any]]) -> str:
    """Render the per-phase timing / throughput / wait analysis."""
    lines: List[str] = []
    spans = _span_table(events)
    lines.append("== where did the time go (spans) ==")
    if spans:
        lines.append(f"{'span':<28}{'count':>8}{'total s':>12}"
                     f"{'mean s':>12}{'max s':>12}")
        for row in spans:
            mean = row["total"] / row["count"] if row["count"] else 0.0
            lines.append(f"{row['name']:<28}{row['count']:>8}"
                         f"{row['total']:>12.4f}{mean:>12.6f}"
                         f"{row['max']:>12.6f}")
    else:
        lines.append("(no span events in log)")

    metrics = _final_metrics(events)
    counters: Dict[str, float] = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("== counters ==")
        for name in sorted(counters):
            value = counters[name]
            rendered = int(value) if value == int(value) else value
            lines.append(f"{name:<40}{rendered:>14}")

    histograms: Dict[str, Any] = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("== phase histograms ==")
        lines.append(f"{'phase':<28}{'count':>8}{'mean s':>12}"
                     f"{'min s':>12}{'max s':>12}")
        for name in sorted(histograms):
            hist = Histogram.from_dict(histograms[name])
            minimum = hist.minimum if hist.minimum is not None else 0.0
            maximum = hist.maximum if hist.maximum is not None else 0.0
            lines.append(f"{name:<28}{hist.count:>8}{hist.mean:>12.6f}"
                         f"{minimum:>12.6f}{maximum:>12.6f}")

    workers: Dict[str, Dict[str, float]] = metrics.get("workers", {})
    if workers:
        lines.append("")
        lines.append("== per-worker throughput ==")
        for component in sorted(workers):
            per = workers[component]
            runs = per.get("search.runs", 0)
            steps = per.get("executor.steps", 0) + per.get("interp.steps", 0)
            waits = sum(value for name, value in per.items()
                        if name.endswith(".wait_seconds"))
            lines.append(f"{component:<28}searches={int(runs):<8}"
                         f"steps={int(steps):<10}idle_s={waits:.3f}")

    requeues = counters.get("broker.requeued", 0)
    renewals = counters.get("broker.lease_renewals", 0)
    if requeues or renewals:
        lines.append("")
        lines.append("== lease health ==")
        lines.append(f"lease renewals: {int(renewals)}")
        lines.append(f"expired-lease requeues: {int(requeues)}")

    dropped = metrics.get("dropped_events", 0)
    if dropped:
        lines.append("")
        lines.append(f"warning: {dropped} events dropped (buffer overflow)")
    return "\n".join(lines)
