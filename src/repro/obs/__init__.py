"""repro.obs — zero-dependency campaign telemetry.

Import-light by design: instrumented modules across ``core``, ``machine``,
``distributed`` and ``net`` import this package from their hot paths, so
only the stdlib-backed core (hub, sink, exporter) loads here.  The CLI
surfaces (``repro top``, ``repro report --telemetry``) live in
``obs.top``/``obs.report`` and are imported lazily where used.
"""

from .events import JsonlEventSink, read_events
from .prometheus import render_broker, render_hub, render_metrics
from .telemetry import (Histogram, NullTelemetry, Telemetry,
                        TelemetrySnapshot, TraceContext, activate_worker,
                        attach_sink, configure, finalize, get, set_hub)

__all__ = [
    "Histogram",
    "JsonlEventSink",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceContext",
    "activate_worker",
    "attach_sink",
    "configure",
    "finalize",
    "get",
    "read_events",
    "render_broker",
    "render_hub",
    "render_metrics",
    "set_hub",
]
