"""Append-only JSONL event sink, following the RecordJournal discipline.

One JSON object per line, appended with a per-process lock.  A crash can
tear at most the final line, so :func:`read_events` tolerates (and skips)
a torn tail instead of failing the whole file.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List


class JsonlEventSink:
    """Thread-safe append-only JSON-lines writer."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def write(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"), sort_keys=True,
                          default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event file, skipping blank lines and a torn tail."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                continue  # torn tail from a crash mid-append
            raise
    return events
