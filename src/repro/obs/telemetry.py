"""Process-local telemetry hub: spans, counters, gauges, histograms.

The hub is a process-global singleton reached through :func:`get`.  By
default it is a :class:`NullTelemetry` whose every operation is a no-op —
instrumented hot paths guard on ``hub.enabled`` so the disabled cost is one
attribute load and a branch.  ``repro analyze --telemetry PATH`` (and the
worker/broker equivalents) swap in a real :class:`Telemetry` hub.

Spans use the monotonic clock and nest through a thread-local stack, so a
``span("broker.complete")`` opened inside ``span("worker.unit")`` parents
correctly.  Cross-process parenting rides :class:`TraceContext`, a tiny
picklable carrier embedded in ``CampaignSpec``/``TaskSpec``: the worker
activates a fresh hub under the coordinator's trace and span ids, and ships
its metrics back as a :class:`TelemetrySnapshot` which the coordinator
merges with :meth:`Telemetry.absorb`.

Everything here is stdlib-only and import-light: instrumented modules in
``core``/``machine``/``distributed`` import this package, so it must not
import them back.
"""

from __future__ import annotations

import bisect
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Histogram",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceContext",
    "activate_worker",
    "attach_sink",
    "configure",
    "finalize",
    "get",
    "set_hub",
]

#: Histogram bucket upper bounds in seconds; a +inf bucket is implicit.
_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Cap on events buffered by a sink-less hub (workers buffer until their
#: snapshot ships the events to the coordinator).  Beyond the cap events
#: are dropped and counted, never grown without bound.
_MAX_PENDING_EVENTS = 4096


class Histogram:
    """Fixed-bucket histogram of seconds, mergeable across processes."""

    __slots__ = ("counts", "total", "count", "minimum", "maximum")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKETS) + 1)
        self.total = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(_BUCKETS, value)] += 1
        self.total += value
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(_BUCKETS),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        hist = cls()
        counts = list(payload.get("counts", ()))
        # Tolerate a bucket-layout drift between versions: fold any extra
        # counts into the overflow bucket rather than dropping samples.
        for i, n in enumerate(counts):
            hist.counts[min(i, len(hist.counts) - 1)] += int(n)
        hist.total = float(payload.get("total", 0.0))
        hist.count = int(payload.get("count", 0))
        hist.minimum = payload.get("min")
        hist.maximum = payload.get("max")
        return hist


@dataclass(frozen=True)
class TraceContext:
    """Picklable cross-process span parentage carrier."""

    trace_id: str
    parent_span_id: Optional[str] = None


@dataclass
class TelemetrySnapshot:
    """A worker hub's state, shipped back alongside campaign results.

    Counters and histograms are cumulative (latest ``seq`` wins per
    component on the coordinator); ``events`` are drained — each event
    appears in exactly one snapshot.
    """

    component: str
    seq: int
    trace_id: Optional[str] = None
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    dropped_events: int = 0


class _NullSpan:
    """Reusable no-op context manager for the disabled hub."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled hub: every operation is a cheap no-op."""

    enabled = False
    sink = None
    trace_id: Optional[str] = None

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, **fields: Any) -> None:
        return None

    def timed_event(self, name: str, seconds: float, **fields: Any) -> None:
        return None

    def context(self) -> Optional[TraceContext]:
        return None

    def snapshot(self, drain: bool = True) -> Optional[TelemetrySnapshot]:
        return None

    def absorb(self, snapshot: Optional[TelemetrySnapshot]) -> None:
        return None

    def adopt_trace(self, trace_id: str) -> None:
        return None


class _Span:
    """An open span; records a duration histogram sample and an event."""

    __slots__ = ("hub", "name", "fields", "span_id", "parent_id", "_start")

    def __init__(self, hub: "Telemetry", name: str,
                 fields: Dict[str, Any]) -> None:
        self.hub = hub
        self.name = name
        self.fields = fields

    def __enter__(self) -> "_Span":
        stack = self.hub._span_stack()
        self.parent_id = stack[-1] if stack else self.hub.parent_span_id
        self.span_id = self.hub._new_span_id()
        stack.append(self.span_id)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        duration = time.monotonic() - self._start
        stack = self.hub._span_stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.hub.observe(self.name, duration)
        event = {
            "type": "span",
            "name": self.name,
            "trace": self.hub.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "component": self.hub.component,
            "ts": time.time(),
            "duration": duration,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.fields:
            event.update(self.fields)
        self.hub._record(event)


class Telemetry:
    """The enabled hub: thread-safe spans, counters, gauges, histograms."""

    enabled = True

    def __init__(self, trace_id: Optional[str] = None,
                 component: Optional[str] = None,
                 parent_span_id: Optional[str] = None,
                 sink: Optional[Any] = None) -> None:
        self.trace_id = trace_id or os.urandom(8).hex()
        self.component = component or self._default_component()
        self.parent_span_id = parent_span_id
        self.sink = sink
        self._lock = threading.Lock()
        self._local = threading.local()
        self._span_ids = itertools.count(1)
        self._snapshot_seq = itertools.count(1)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._pending: List[Dict[str, Any]] = []
        self._dropped_events = 0
        #: When True, events go to the sink AND the pending buffer: a
        #: standalone worker with its own ``--telemetry`` sink still ships
        #: its spans upstream so the coordinator's trace stays complete.
        self.tee_pending = False
        #: Latest snapshot per absorbed worker component.
        self._workers: Dict[str, TelemetrySnapshot] = {}

    @staticmethod
    def _default_component() -> str:
        try:
            import multiprocessing

            return multiprocessing.current_process().name
        except Exception:
            return f"pid-{os.getpid()}"

    # -- span plumbing ---------------------------------------------------

    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _new_span_id(self) -> str:
        return f"{os.getpid():x}.{next(self._span_ids)}"

    def current_span_id(self) -> Optional[str]:
        stack = self._span_stack()
        return stack[-1] if stack else self.parent_span_id

    def span(self, name: str, **fields: Any) -> _Span:
        return _Span(self, name, fields)

    # -- metrics ---------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    # -- events ----------------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        record = {
            "type": "event",
            "name": name,
            "trace": self.trace_id,
            "parent": self.current_span_id(),
            "component": self.component,
            "ts": time.time(),
        }
        if fields:
            record.update(fields)
        self._record(record)

    def timed_event(self, name: str, seconds: float, **fields: Any) -> None:
        """A span-shaped event for a duration measured out-of-band."""
        self.observe(name, seconds)
        record = {
            "type": "span",
            "name": name,
            "trace": self.trace_id,
            "span": self._new_span_id(),
            "parent": self.current_span_id(),
            "component": self.component,
            "ts": time.time(),
            "duration": seconds,
        }
        if fields:
            record.update(fields)
        self._record(record)

    def _record(self, event: Dict[str, Any]) -> None:
        sink = self.sink
        if sink is not None:
            sink.write(event)
            if not self.tee_pending:
                return
        with self._lock:
            if len(self._pending) >= _MAX_PENDING_EVENTS:
                self._dropped_events += 1
            else:
                self._pending.append(event)

    def set_sink(self, sink: Any) -> None:
        """Attach a sink, flushing any events buffered while sink-less."""
        with self._lock:
            pending, self._pending = self._pending, []
        for event in pending:
            sink.write(event)
        self.sink = sink

    # -- cross-process ---------------------------------------------------

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id,
                            parent_span_id=self.current_span_id())

    def adopt_trace(self, trace_id: str) -> None:
        self.trace_id = trace_id

    def snapshot(self, drain: bool = True) -> TelemetrySnapshot:
        """Cumulative metrics plus drained events, for shipping upstream."""
        with self._lock:
            events: List[Dict[str, Any]] = []
            if drain:
                events, self._pending = self._pending, []
            return TelemetrySnapshot(
                component=self.component,
                seq=next(self._snapshot_seq),
                trace_id=self.trace_id,
                counters=dict(self.counters),
                gauges=dict(self.gauges),
                histograms={name: hist.to_dict()
                            for name, hist in self.histograms.items()},
                events=events,
                dropped_events=self._dropped_events,
            )

    def absorb(self, snapshot: Optional[TelemetrySnapshot]) -> None:
        """Merge a worker snapshot: keep latest-seq metrics, sink events."""
        if snapshot is None:
            return
        events = snapshot.events
        with self._lock:
            previous = self._workers.get(snapshot.component)
            if previous is None or snapshot.seq >= previous.seq:
                self._workers[snapshot.component] = TelemetrySnapshot(
                    component=snapshot.component,
                    seq=snapshot.seq,
                    trace_id=snapshot.trace_id,
                    counters=dict(snapshot.counters),
                    gauges=dict(snapshot.gauges),
                    histograms={name: dict(payload) for name, payload
                                in snapshot.histograms.items()},
                    dropped_events=snapshot.dropped_events,
                )
        # Worker events keep their original span/component identity, so
        # sinking them here yields a single parented trace file.
        for event in events:
            self._record(event)

    def merged_counters(self) -> Dict[str, float]:
        with self._lock:
            merged = dict(self.counters)
            for snap in self._workers.values():
                for name, value in snap.counters.items():
                    merged[name] = merged.get(name, 0) + value
        return merged

    def merged_histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            merged: Dict[str, Histogram] = {}
            for name, hist in self.histograms.items():
                copy = Histogram()
                copy.merge(hist)
                merged[name] = copy
            for snap in self._workers.values():
                for name, payload in snap.histograms.items():
                    merged.setdefault(name, Histogram()).merge(
                        Histogram.from_dict(payload))
        return merged

    def worker_snapshots(self) -> Dict[str, TelemetrySnapshot]:
        with self._lock:
            return dict(self._workers)

    def metrics_event(self) -> Dict[str, Any]:
        """The campaign-final metrics record appended to the event log."""
        merged_hists = self.merged_histograms()
        with self._lock:
            dropped = self._dropped_events + sum(
                snap.dropped_events for snap in self._workers.values())
            workers = {name: dict(snap.counters)
                       for name, snap in self._workers.items()}
            gauges = dict(self.gauges)
        return {
            "type": "metrics",
            "trace": self.trace_id,
            "component": self.component,
            "ts": time.time(),
            "counters": self.merged_counters(),
            "gauges": gauges,
            "histograms": {name: hist.to_dict()
                           for name, hist in merged_hists.items()},
            "workers": workers,
            "dropped_events": dropped,
        }


# -- the process-global hub ---------------------------------------------

_hub: Any = NullTelemetry()


def get() -> Any:
    """The process-global telemetry hub (NullTelemetry when disabled)."""
    return _hub


def set_hub(hub: Any) -> Any:
    global _hub
    _hub = hub
    return hub


def configure(sink: Optional[Any] = None, component: Optional[str] = None,
              trace_id: Optional[str] = None) -> Telemetry:
    """Enable telemetry in this process, replacing the global hub."""
    return set_hub(Telemetry(trace_id=trace_id, component=component,
                             sink=sink))


def activate_worker(context: Optional[TraceContext],
                    component: Optional[str] = None) -> Any:
    """Install the worker-side hub for a (possibly absent) trace context.

    Always *replaces* the global hub: under the fork start method a pool
    child inherits the coordinator's hub — including its open sink file —
    and concurrent appends from many children would interleave.  Workers
    therefore get a fresh sink-less hub (events buffer until the next
    snapshot ships them) or the null hub when telemetry is off.
    """
    if context is None:
        return set_hub(NullTelemetry())
    return set_hub(Telemetry(trace_id=context.trace_id,
                             parent_span_id=context.parent_span_id,
                             component=component))


def attach_sink(sink: Any, component: Optional[str] = None) -> Telemetry:
    """Attach a sink to the current hub, enabling it if necessary.

    Used by the standalone ``repro worker`` CLI whose ``--telemetry``
    sink must survive the hub replacement done by worker activation.
    Events are teed: they land in the worker's own sink *and* keep
    buffering for the result-borne snapshot, so the coordinator's merged
    trace stays complete even when workers also record locally.
    """
    hub = get()
    if not isinstance(hub, Telemetry):
        hub = set_hub(Telemetry(component=component))
    hub.set_sink(sink)
    hub.tee_pending = True
    return hub


def finalize() -> None:
    """Emit the final metrics record, close the sink, disable the hub."""
    global _hub
    hub = _hub
    if isinstance(hub, Telemetry) and hub.sink is not None:
        hub.sink.write(hub.metrics_event())
        try:
            hub.sink.close()
        except Exception:
            pass
    _hub = NullTelemetry()
