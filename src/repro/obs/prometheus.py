"""Prometheus text-exposition rendering of hub and broker metrics.

Snapshot-style exporter: ``repro analyze --telemetry-prometheus PATH``
writes one exposition file at campaign end, and ``repro top --prometheus``
renders the broker's live telemetry in the same format for scraping
through a textfile collector.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping, Optional

from .telemetry import Histogram, Telemetry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str = "repro") -> str:
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def _fmt(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def render_metrics(counters: Mapping[str, float],
                   gauges: Mapping[str, float],
                   histograms: Mapping[str, Histogram],
                   prefix: str = "repro") -> str:
    """Render counters/gauges/histograms in Prometheus text format."""
    lines = []
    for name in sorted(counters):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counters[name])}")
    for name in sorted(gauges):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauges[name])}")
    for name in sorted(histograms):
        hist = histograms[name]
        metric = _metric_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = hist.to_dict()["buckets"]
        for bound, count in zip(buckets, hist.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += hist.counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def render_hub(hub: Telemetry, prefix: str = "repro") -> str:
    """Render a hub's merged (coordinator + workers) metrics."""
    return render_metrics(hub.merged_counters(), dict(hub.gauges),
                          hub.merged_histograms(), prefix=prefix)


def render_broker(status: Dict[str, Any],
                  prefix: str = "repro_broker") -> str:
    """Render a broker telemetry snapshot (the ``telemetry`` op reply)."""
    gauges: Dict[str, float] = {}
    for key in ("pending", "claimed", "results", "total"):
        # ``total`` is None until a manifest is published — unrepresentable
        # as a Prometheus sample, so it is omitted rather than rendered.
        if status.get(key) is not None:
            gauges[key] = status[key]
    uptime: Optional[float] = status.get("uptime_seconds")
    if uptime is not None:
        gauges["uptime_seconds"] = uptime
    lines = []
    for name in sorted(gauges):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauges[name])}")
    ops: Mapping[str, float] = status.get("ops", {})
    if ops:
        metric = f"{prefix}_ops_total"
        lines.append(f"# TYPE {metric} counter")
        for op in sorted(ops):
            lines.append(f'{metric}{{op="{op}"}} {_fmt(ops[op])}')
    return "\n".join(lines) + "\n" if lines else ""
