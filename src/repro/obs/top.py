"""``repro top --queue tcp://…`` — live broker/campaign status frames.

Polls the broker's ``telemetry`` operation over the existing framed
protocol and renders either a human-readable status frame or a
Prometheus-text snapshot per interval.  Imports the net client lazily so
``repro.obs`` stays import-light for the instrumented hot paths.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

from .prometheus import render_broker


def format_broker_status(status: Dict[str, Any],
                         previous: Optional[Dict[str, Any]] = None,
                         elapsed: Optional[float] = None) -> str:
    """One human-readable status frame from a broker telemetry reply."""
    total = status.get("total")
    results = status.get("results", 0)
    done = f"{results}/{total}" if total is not None else f"{results}/?"
    lines = [
        "repro top — broker "
        + ("(manifest published)" if status.get("manifest")
           else "(no manifest)"),
        f"  pending {status.get('pending', 0):>6}"
        f"   claimed {status.get('claimed', 0):>6}"
        f"   results {done:>11}"
        f"   uptime {status.get('uptime_seconds', 0.0):8.1f}s",
    ]
    ops: Dict[str, float] = status.get("ops", {})
    if ops:
        if previous is not None and elapsed:
            prev_ops: Dict[str, float] = previous.get("ops", {})
            rate = sum(ops.values()) - sum(prev_ops.values())
            lines.append(f"  ops: {int(sum(ops.values()))} total"
                         f"   ({rate / elapsed:.1f}/s)")
        else:
            lines.append(f"  ops: {int(sum(ops.values()))} total")
        busiest = sorted(ops.items(), key=lambda kv: -kv[1])[:4]
        lines.append("  top ops: " + "  ".join(
            f"{op}={int(count)}" for op, count in busiest))
    leases = status.get("leases", [])
    if leases:
        lines.append("  leases:")
        for lease in leases[:8]:
            lines.append(f"    task {lease['index']:>5}  expires in "
                         f"{lease['expires_in']:6.1f}s")
        if len(leases) > 8:
            lines.append(f"    … and {len(leases) - 8} more")
    return "\n".join(lines)


def run_top(url: str, interval: float = 2.0,
            iterations: Optional[int] = None, once: bool = False,
            prometheus: bool = False, out: Optional[TextIO] = None) -> int:
    """Poll the broker and print status frames; returns an exit code."""
    from ..net.client import BrokerConnectionError, SocketBroker

    out = out if out is not None else sys.stdout
    if once:
        iterations = 1
    remaining = iterations
    previous: Optional[Dict[str, Any]] = None
    previous_at: Optional[float] = None
    with SocketBroker(url) as broker:
        while True:
            try:
                status = broker.telemetry()
            except BrokerConnectionError as exc:
                print(f"repro top: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            if prometheus:
                out.write(render_broker(status))
            else:
                elapsed = (None if previous_at is None
                           else now - previous_at)
                out.write(format_broker_status(status, previous, elapsed)
                          + "\n")
            out.flush()
            previous, previous_at = status, now
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return 0
            time.sleep(interval)
