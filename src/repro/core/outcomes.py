"""Classification of program outcomes under error (paper Sections 3.1 and 6).

The framework's output is the set of errors that evade detection and lead to
program *failure*: a crash, a hang or an incorrect output.  This module maps
terminal machine states onto those outcome categories, relative to the
program's error-free ("golden") output.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

from ..isa.values import is_err
from ..machine.state import MachineState, Status


class OutcomeKind(Enum):
    """Outcome of one (possibly error-afflicted) program execution."""

    CORRECT = "correct"                # halted with the golden output
    INCORRECT_OUTPUT = "incorrect"     # halted, output differs from golden
    ERR_OUTPUT = "err-output"          # halted, an err value was printed
    CRASH = "crash"                    # terminated with an exception
    HANG = "hang"                      # watchdog timeout
    DETECTED = "detected"              # a detector fired before failure

    def is_failure(self) -> bool:
        """Failures per the paper: crash, hang or incorrect output."""
        return self in (OutcomeKind.INCORRECT_OUTPUT, OutcomeKind.ERR_OUTPUT,
                        OutcomeKind.CRASH, OutcomeKind.HANG)


@dataclass(frozen=True)
class Outcome:
    """A classified terminal state."""

    kind: OutcomeKind
    output: Tuple
    exception: Optional[str] = None
    detector_id: Optional[int] = None

    def describe(self) -> str:
        extra = ""
        if self.exception:
            extra = f" ({self.exception})"
        if self.detector_id is not None:
            extra = f" (detector {self.detector_id})"
        rendered = ", ".join("err" if is_err(item) else repr(item)
                             for item in self.output)
        return f"{self.kind.value}{extra}: output=[{rendered}]"


def classify(state: MachineState,
             golden_output: Optional[Sequence] = None) -> Outcome:
    """Classify a terminal machine state against the golden output.

    ``golden_output`` is the output of the error-free run; when omitted, any
    halted run that did not print ``err`` is considered correct.
    """
    if state.status is Status.RUNNING:
        raise ValueError("cannot classify a state that is still running")

    output = state.output_values()
    if state.status is Status.DETECTED:
        return Outcome(OutcomeKind.DETECTED, output, state.exception,
                       state.detector_id)
    if state.status is Status.EXCEPTION:
        return Outcome(OutcomeKind.CRASH, output, state.exception)
    if state.status is Status.TIMEOUT:
        return Outcome(OutcomeKind.HANG, output, state.exception)

    # Halted normally.
    if state.output_contains_err():
        return Outcome(OutcomeKind.ERR_OUTPUT, output)
    if golden_output is not None and tuple(golden_output) != output:
        return Outcome(OutcomeKind.INCORRECT_OUTPUT, output)
    return Outcome(OutcomeKind.CORRECT, output)


def golden_run_output(program, input_values: Sequence[int] = (),
                      memory=None, detectors=None,
                      max_steps: int = 200_000) -> Tuple:
    """Compute the error-free output of *program* for the given input."""
    from ..detectors import EMPTY_DETECTORS
    from ..machine.executor import run_concrete
    from ..machine.state import initial_state

    state = initial_state(input_values=input_values, memory=memory)
    run_concrete(program, state,
                 detectors=detectors if detectors is not None else EMPTY_DETECTORS,
                 max_steps=max_steps)
    if state.status is not Status.HALTED:
        raise RuntimeError(
            f"golden run did not halt normally: {state.status.value} "
            f"({state.exception})")
    return state.output_values()
