"""Outcome predicates — the "search command" conditions of Section 5.4.

The paper exposes model checking through Maude's ``search`` command: the user
provides a predicate on final machine states (for example *"the output
contains err"* or *"the program did not throw an exception and produced a
value other than 1"*).  A :class:`SearchQuery` couples such a predicate with
a human-readable description; the query generator
(:mod:`repro.frontend.querygen`) builds the common ones automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from ..isa.values import is_err
from ..machine.state import MachineState, Status
from ..machine.state import state_contains_err as _state_contains_err


Predicate = Callable[[MachineState], bool]


@dataclass(frozen=True)
class SearchQuery:
    """A named predicate over terminal machine states."""

    description: str
    predicate: Predicate

    def __call__(self, state: MachineState) -> bool:
        return self.predicate(state)

    # ------------------------------------------------------------ combinators

    def __and__(self, other: "SearchQuery") -> "SearchQuery":
        return SearchQuery(f"({self.description}) and ({other.description})",
                           lambda state: self.predicate(state) and other.predicate(state))

    def __or__(self, other: "SearchQuery") -> "SearchQuery":
        return SearchQuery(f"({self.description}) or ({other.description})",
                           lambda state: self.predicate(state) or other.predicate(state))

    def __invert__(self) -> "SearchQuery":
        return SearchQuery(f"not ({self.description})",
                           lambda state: not self.predicate(state))


# ---------------------------------------------------------------- primitives

def output_contains_err() -> SearchQuery:
    """The paper's canonical query: some printed value is ``err``."""
    return SearchQuery("output contains err",
                       lambda state: state.output_contains_err())


def latent_err() -> SearchQuery:
    """Some location (register, memory word, PC or output) still holds ``err``.

    The query for fault models whose corruption need not reach the output
    — e.g. :class:`~repro.faults.models.MemoryCellFault` corrupting a cell
    the program never prints: the error is *latent* in the final state.
    Registers, memory and the PC come from the state's O(1) err census;
    the output scan covers errors that reached a ``print`` but whose
    source location was since overwritten.
    """
    return SearchQuery("final state retains err",
                       lambda state: (_state_contains_err(state)
                                      or state.output_contains_err()))


def any_outcome() -> SearchQuery:
    """Match every terminal state.

    The census query of the parity study: with it, the recording strategy
    classifies and warehouses *every* outcome a campaign reaches — correct
    runs included — so ``repro report --parity`` can compare the full
    symbolic outcome set per injection point against concrete bit flips.
    """
    return SearchQuery("any terminal outcome", lambda state: True)


def crashed() -> SearchQuery:
    return SearchQuery("program crashed (exception thrown)",
                       lambda state: state.status is Status.EXCEPTION)


def hung() -> SearchQuery:
    return SearchQuery("program hung (watchdog timeout)",
                       lambda state: state.status is Status.TIMEOUT)


def detected() -> SearchQuery:
    return SearchQuery("a detector fired",
                       lambda state: state.status is Status.DETECTED)


def halted_normally() -> SearchQuery:
    return SearchQuery("program halted normally",
                       lambda state: state.status is Status.HALTED)


def printed_value(value) -> SearchQuery:
    """Some ``print`` instruction emitted exactly *value*."""
    return SearchQuery(f"program printed {value!r}",
                       lambda state: value in state.printed_integers())


def last_printed_value(value) -> SearchQuery:
    def predicate(state: MachineState) -> bool:
        printed = state.printed_integers()
        return bool(printed) and printed[-1] == value
    return SearchQuery(f"last printed value is {value!r}", predicate)


def output_equals(expected: Sequence) -> SearchQuery:
    expected_tuple = tuple(expected)
    return SearchQuery(f"output equals {expected_tuple!r}",
                       lambda state: state.output_values() == expected_tuple)


def output_differs(expected: Sequence) -> SearchQuery:
    expected_tuple = tuple(expected)
    return SearchQuery(
        f"output differs from the golden output {expected_tuple!r}",
        lambda state: state.output_values() != expected_tuple)


def incorrect_output(expected: Sequence) -> SearchQuery:
    """Halted normally (no exception, no detection) but produced wrong output.

    This is the query used for the tcas and replace campaigns in Section 6:
    the program must not crash and must not be stopped by a detector, yet its
    output differs from the error-free run (possibly being ``err``).
    """
    return halted_normally() & output_differs(expected)


def undetected_failure(expected: Sequence) -> SearchQuery:
    """Any failure (crash, hang or wrong output) that no detector caught."""
    failing = crashed() | hung() | (halted_normally() & output_differs(expected))
    return ~detected() & failing


def printed_value_other_than(correct_value,
                             allowed: Tuple = ()) -> SearchQuery:
    """Halted normally and printed a final value different from *correct_value*.

    Mirrors the Section 6.1 search: "runs in which the program did not throw
    an exception and produced a value other than 1".
    """
    def predicate(state: MachineState) -> bool:
        if state.status is not Status.HALTED:
            return False
        printed = state.printed_integers()
        if not printed:
            return True
        final = printed[-1]
        if is_err(final):
            return True
        return final != correct_value and final not in allowed
    return SearchQuery(
        f"halted with a printed value other than {correct_value!r}", predicate)
