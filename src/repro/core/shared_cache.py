"""A search-result cache shared across processes (ROADMAP open item).

:class:`~repro.core.search.SearchResultCache` memoises completed searches,
but each worker process keeps its own instance, so convergent injection
points claimed by *different* workers are searched once per worker.
:class:`SharedSearchResultCache` closes that gap with a sqlite-backed store
on the filesystem: every pool worker, every distributed worker and the
serial sweep can open the same database file and reuse each other's
completed searches.

Keys are content digests rather than the in-memory cache's identity-based
tuples: the executor is represented by a digest of its program, detectors
and config (:func:`~repro.core.search.executor_digest`), the injected state
by a canonical flattened digest (:func:`~repro.core.search.
stable_state_digest`), and the query by its description — the same contract
the in-memory cache documents.  Values are pickled
:class:`~repro.core.search.SearchResult` objects; pickling flattens machine
states, so a result stored by one process is self-contained for every other.

Concurrency: sqlite serialises writers; readers use WAL mode where the
filesystem supports it and fall back silently where it does not.  Two
workers racing to store the same key simply overwrite each other with the
identical result (searches are pure functions of the key), so no locking
beyond sqlite's own is needed.  Hit/miss counters are tracked per process —
exactly like the per-worker caches — and aggregate through the existing
``CacheStatistics.accumulate`` / ``--progress`` plumbing.
"""

from __future__ import annotations

import pickle
import sqlite3
from typing import Dict, Optional, Tuple

from .. import obs as _obs
from ..machine.executor import Executor
from ..machine.state import MachineState
from .queries import SearchQuery
from .search import (CacheStatistics, SearchResult, executor_digest,
                     stable_state_digest)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS search_results (
    key BLOB PRIMARY KEY,
    result BLOB NOT NULL
)
"""


class SharedSearchResultCache:
    """Cross-process search-result cache backed by a sqlite database file.

    Drop-in for :class:`SearchResultCache` wherever a ``result_cache`` is
    accepted (``make_key`` / ``get`` / ``store`` / ``statistics`` /
    ``__len__``): :class:`~repro.core.search.BoundedModelChecker` uses it
    unchanged.
    """

    def __init__(self, path: str, busy_timeout_seconds: float = 30.0) -> None:
        self.path = path
        self._connection = sqlite3.connect(path, timeout=busy_timeout_seconds)
        try:
            self._connection.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - filesystem-specific
            pass  # e.g. network filesystems; the rollback journal still works
        self._connection.execute(_SCHEMA)
        self._connection.commit()
        self.statistics = CacheStatistics()
        # Executor digests are content hashes of immutable configuration;
        # memoise them by identity so the per-lookup cost is one state digest.
        self._executor_digests: Dict[int, Tuple[Executor, bytes]] = {}

    # ------------------------------------------------------------------- keys

    def make_key(self, executor: Executor, state: MachineState,
                 query: SearchQuery, caps: Tuple) -> bytes:
        memo = self._executor_digests.get(id(executor))
        if memo is None or memo[0] is not executor:
            # The memo holds a strong reference, so the id cannot be recycled
            # while the entry is alive.
            memo = (executor, executor_digest(executor))
            self._executor_digests[id(executor)] = memo
        return pickle.dumps(
            (memo[1], stable_state_digest(state), state.steps,
             query.description, caps),
            protocol=4)

    # ---------------------------------------------------------------- queries

    def get(self, key: bytes) -> Optional[SearchResult]:
        row = self._connection.execute(
            "SELECT result FROM search_results WHERE key = ?",
            (key,)).fetchone()
        hub = _obs.get()
        if row is None:
            self.statistics.misses += 1
            if hub.enabled:
                hub.count("shared_cache.misses")
            return None
        self.statistics.hits += 1
        if hub.enabled:
            hub.count("shared_cache.hits")
        return pickle.loads(row[0])

    def store(self, key: bytes, result: SearchResult) -> None:
        payload = pickle.dumps(result, protocol=4)
        self._connection.execute(
            "INSERT OR REPLACE INTO search_results (key, result) VALUES (?, ?)",
            (key, payload))
        self._connection.commit()
        self.statistics.stores += 1
        hub = _obs.get()
        if hub.enabled:
            hub.count("shared_cache.stores")

    def __len__(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM search_results").fetchone()
        return int(row[0])

    def close(self) -> None:
        self._connection.close()
