"""The SymPLFIED core: symbolic model checking, queries, campaigns and tasks."""

from .outcomes import Outcome, OutcomeKind, classify, golden_run_output
from .queries import (SearchQuery, crashed, detected, halted_normally, hung,
                      incorrect_output, last_printed_value, output_contains_err,
                      output_differs, output_equals, printed_value,
                      printed_value_other_than, undetected_failure)
from .search import BoundedModelChecker, SearchResult, SearchStatistics, Solution
from .campaign import CampaignResult, InjectionResult, SymbolicCampaign
from .tasks import (SearchTask, TaskCampaignReport, TaskResult, TaskRunner,
                    decompose_by_code_section, decompose_by_injection)
from .traces import Witness, witnesses_from_campaign

__all__ = [
    "Outcome", "OutcomeKind", "classify", "golden_run_output",
    "SearchQuery", "crashed", "detected", "halted_normally", "hung",
    "incorrect_output", "last_printed_value", "output_contains_err",
    "output_differs", "output_equals", "printed_value",
    "printed_value_other_than", "undetected_failure",
    "BoundedModelChecker", "SearchResult", "SearchStatistics", "Solution",
    "CampaignResult", "InjectionResult", "SymbolicCampaign",
    "SearchTask", "TaskCampaignReport", "TaskResult", "TaskRunner",
    "decompose_by_code_section", "decompose_by_injection",
    "Witness", "witnesses_from_campaign",
]
