"""The SymPLFIED core: symbolic model checking, queries, campaigns and tasks."""

from .outcomes import Outcome, OutcomeKind, classify, golden_run_output
from .queries import (SearchQuery, any_outcome, crashed, detected,
                      halted_normally, hung,
                      incorrect_output, last_printed_value, latent_err,
                      output_contains_err, output_differs, output_equals,
                      printed_value, printed_value_other_than,
                      undetected_failure)
from .search import (BoundedModelChecker, CacheStatistics, SearchResult,
                     SearchResultCache, SearchStatistics, Solution,
                     executor_digest, stable_state_digest)
from .shared_cache import SharedSearchResultCache
from .campaign import (CampaignResult, ExecutionStrategy, InjectionResult,
                       SerialExecutionStrategy, SymbolicCampaign)
from .tasks import (SearchTask, SerialTaskStrategy, TaskCampaignReport,
                    TaskExecutionStrategy, TaskResult, TaskRunner,
                    TaskSweepStrategy, chunk_injections, decompose_by_chunk,
                    decompose_by_code_section, decompose_by_injection,
                    default_chunk_size)
from .traces import Witness, witnesses_from_campaign

__all__ = [
    "Outcome", "OutcomeKind", "classify", "golden_run_output",
    "SearchQuery", "any_outcome", "crashed", "detected",
    "halted_normally", "hung",
    "incorrect_output", "last_printed_value", "latent_err",
    "output_contains_err", "output_differs", "output_equals",
    "printed_value", "printed_value_other_than", "undetected_failure",
    "BoundedModelChecker", "CacheStatistics", "SearchResult",
    "SearchResultCache", "SearchStatistics", "SharedSearchResultCache",
    "Solution", "executor_digest", "stable_state_digest",
    "CampaignResult", "ExecutionStrategy", "InjectionResult",
    "SerialExecutionStrategy", "SymbolicCampaign",
    "SearchTask", "SerialTaskStrategy", "TaskCampaignReport",
    "TaskExecutionStrategy", "TaskResult", "TaskRunner",
    "TaskSweepStrategy",
    "chunk_injections", "decompose_by_chunk",
    "decompose_by_code_section", "decompose_by_injection",
    "default_chunk_size",
    "Witness", "witnesses_from_campaign",
]
