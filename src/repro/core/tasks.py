"""Search-task decomposition (paper Section 6.1, "Running Time").

The paper splits the overall search command into many smaller searches, each
sweeping a particular section of the program code, and runs them as
independent tasks on a cluster — 150 tasks for tcas, 312 for replace — with
per-task caps (at most 10 errors found, at most 30 minutes of wall-clock).
The aggregate campaign then reports how many tasks completed, how many found
errors, and the average completion times, which is exactly the data reported
in Sections 6.2 and 6.4.

This module reproduces the decomposition and the aggregate statistics.  Tasks
are executed sequentially by default (deterministic and dependency-free); the
runner interface keeps each task self-contained so they could equally be
distributed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..errors.injector import Injection
from .campaign import (ExecutionStrategy, InjectionResult, ProgressCallback,
                       SymbolicCampaign)
from .queries import SearchQuery
from .search import SearchResultCache


@dataclass
class SearchTask:
    """One independent search task: a slice of the injection sweep."""

    identifier: int
    injections: Tuple[Injection, ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.injections)


@dataclass
class TaskResult:
    """Result of running one search task under its caps."""

    task: SearchTask
    results: List[InjectionResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    completed: bool = True
    errors_found: int = 0

    @property
    def found_errors(self) -> bool:
        return self.errors_found > 0


@dataclass
class TaskCampaignReport:
    """Aggregate statistics over every task — the Section 6.2/6.4 numbers."""

    task_results: List[TaskResult] = field(default_factory=list)
    query_description: str = ""
    elapsed_seconds: float = 0.0

    @property
    def total_tasks(self) -> int:
        return len(self.task_results)

    @property
    def completed_tasks(self) -> int:
        return sum(1 for result in self.task_results if result.completed)

    @property
    def incomplete_tasks(self) -> int:
        return self.total_tasks - self.completed_tasks

    @property
    def tasks_with_errors(self) -> int:
        return sum(1 for result in self.task_results
                   if result.completed and result.found_errors)

    @property
    def tasks_without_errors(self) -> int:
        return sum(1 for result in self.task_results
                   if result.completed and not result.found_errors)

    @property
    def total_errors_found(self) -> int:
        return sum(result.errors_found for result in self.task_results)

    def average_completion_seconds(self, with_errors: Optional[bool] = None) -> float:
        relevant = [result for result in self.task_results if result.completed]
        if with_errors is True:
            relevant = [result for result in relevant if result.found_errors]
        elif with_errors is False:
            relevant = [result for result in relevant if not result.found_errors]
        if not relevant:
            return 0.0
        return sum(result.elapsed_seconds for result in relevant) / len(relevant)

    def max_completion_seconds(self, with_errors: Optional[bool] = None) -> float:
        relevant = [result for result in self.task_results if result.completed]
        if with_errors is True:
            relevant = [result for result in relevant if result.found_errors]
        elif with_errors is False:
            relevant = [result for result in relevant if not result.found_errors]
        return max((result.elapsed_seconds for result in relevant), default=0.0)

    def solutions(self) -> List[Tuple[Injection, object]]:
        found = []
        for task_result in self.task_results:
            for injection_result in task_result.results:
                for solution in injection_result.solutions:
                    found.append((injection_result.injection, solution))
        return found

    def describe(self) -> str:
        lines = [
            f"query                        : {self.query_description}",
            f"search tasks                 : {self.total_tasks}",
            f"tasks completed              : {self.completed_tasks}",
            f"tasks not completed          : {self.incomplete_tasks}",
            f"completed, no errors found   : {self.tasks_without_errors}",
            f"completed, errors found      : {self.tasks_with_errors}",
            f"total errors found           : {self.total_errors_found}",
            f"avg completion (no errors)   : "
            f"{self.average_completion_seconds(with_errors=False):.3f}s",
            f"avg completion (with errors) : "
            f"{self.average_completion_seconds(with_errors=True):.3f}s",
            f"max completion (with errors) : "
            f"{self.max_completion_seconds(with_errors=True):.3f}s",
            f"total wall clock             : {self.elapsed_seconds:.3f}s",
        ]
        return "\n".join(lines)


def decompose_by_code_section(injections: Sequence[Injection],
                              num_tasks: int) -> List[SearchTask]:
    """Split a sweep into *num_tasks* tasks, each covering a code section.

    Injections are grouped by breakpoint address so that each task sweeps a
    contiguous section of the program (the paper's decomposition), keeping
    tasks independent and roughly equal in size.
    """
    if num_tasks <= 0:
        raise ValueError(f"num_tasks must be positive, got {num_tasks}")
    ordered = sorted(injections, key=lambda injection: (injection.breakpoint_pc,
                                                        repr(injection.target)))
    num_tasks = min(num_tasks, max(1, len(ordered)))
    tasks: List[SearchTask] = []
    base, remainder = divmod(len(ordered), num_tasks)
    start = 0
    for identifier in range(num_tasks):
        size = base + (1 if identifier < remainder else 0)
        chunk = tuple(ordered[start:start + size])
        start += size
        if not chunk:
            continue
        first_pc = chunk[0].breakpoint_pc
        last_pc = chunk[-1].breakpoint_pc
        tasks.append(SearchTask(
            identifier=identifier,
            injections=chunk,
            description=f"code section [{first_pc}, {last_pc}]"))
    return tasks


def decompose_by_injection(injections: Sequence[Injection]) -> List[SearchTask]:
    """One task per injection (the finest decomposition)."""
    return [SearchTask(identifier=index, injections=(injection,),
                       description=injection.label())
            for index, injection in enumerate(injections)]


def chunk_injections(injections: Sequence[Injection],
                     chunk_size: int) -> List[Tuple[Injection, ...]]:
    """Split a sweep into fixed-size chunks, preserving order.

    The final chunk may be smaller; an empty sweep yields no chunks, and a
    chunk size larger than the sweep yields a single chunk.  This is the
    scheduling granularity of the parallel runner: each chunk is one unit of
    work handed to a worker, so smaller chunks balance load better while
    larger chunks amortise task-dispatch overhead.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    ordered = list(injections)
    chunks = [tuple(ordered[start:start + chunk_size])
              for start in range(0, len(ordered), chunk_size)]
    assert all(chunks), "chunking must never produce an empty chunk"
    return chunks


def decompose_by_chunk(injections: Sequence[Injection],
                       chunk_size: int) -> List[SearchTask]:
    """Fixed-size chunk decomposition (sweep order, not code sections)."""
    tasks = []
    for identifier, chunk in enumerate(chunk_injections(injections, chunk_size)):
        tasks.append(SearchTask(
            identifier=identifier, injections=chunk,
            description=f"chunk {identifier} ({len(chunk)} injections)"))
    return tasks


def default_chunk_size(total_injections: int, workers: int,
                       chunks_per_worker: int = 4) -> int:
    """Heuristic chunk size: a few chunks per worker for load balancing."""
    if total_injections <= 0:
        return 1
    workers = max(1, workers)
    target_chunks = workers * max(1, chunks_per_worker)
    return max(1, -(-total_injections // target_chunks))


class TaskExecutionStrategy:
    """How a batch of search tasks is executed (mirrors ExecutionStrategy).

    Implementations must return one :class:`TaskResult` per task, in
    submission order, so reports are deterministic regardless of where the
    tasks actually ran.
    """

    name: str = "abstract"

    #: When False, the strategy still hands every completed task to the
    #: progress callback (so streaming consumers see each result exactly
    #: once) but returns an empty list instead of the merged task results —
    #: the coordinator's memory stays flat over arbitrarily large sweeps.
    retain_results: bool = True

    def run(self, runner: "TaskRunner", tasks: Sequence[SearchTask],
            query: SearchQuery,
            progress: Optional[Callable[[int, int, "TaskResult"], None]] = None,
            ) -> List["TaskResult"]:
        raise NotImplementedError


class SerialTaskStrategy(TaskExecutionStrategy):
    """Run tasks in-process, sharing one search-result cache across tasks."""

    name = "serial"

    def __init__(self, result_cache: Optional[SearchResultCache] = None) -> None:
        self.result_cache = result_cache

    def run(self, runner: "TaskRunner", tasks: Sequence[SearchTask],
            query: SearchQuery,
            progress: Optional[Callable[[int, int, "TaskResult"], None]] = None,
            ) -> List["TaskResult"]:
        results: List[TaskResult] = []
        for index, task in enumerate(tasks):
            task_result = runner.run_task(task, query,
                                          result_cache=self.result_cache)
            if self.retain_results:
                results.append(task_result)
            if progress is not None:
                progress(index + 1, len(tasks), task_result)
        return results


class TaskSweepStrategy(ExecutionStrategy):
    """Run an injection sweep as whole search tasks through any task backend.

    The adapter between the two strategy seams: it decomposes the sweep
    into fixed-size :class:`SearchTask` units, executes them through the
    given :class:`TaskExecutionStrategy` (serial, pool or distributed) with
    the per-task caps disabled, and flattens the task results back into the
    per-injection list :meth:`SymbolicCampaign.run` expects.  With the caps
    off every injection of every task runs, so the flattened results are
    identical to a direct sweep — which is what lets ``repro analyze
    --granularity task`` ship *whole tasks* through a broker and still
    produce a byte-identical :class:`~repro.core.campaign.CampaignResult`.
    """

    name = "task-sweep"

    def __init__(self, task_strategy: TaskExecutionStrategy,
                 chunk_size: Optional[int] = None,
                 workers_hint: int = 1) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.task_strategy = task_strategy
        self.chunk_size = chunk_size
        self.workers_hint = max(1, workers_hint)

    @property
    def cache_statistics(self):
        """Delegate to the wrapped task strategy's counters (if it has any)."""
        return getattr(self.task_strategy, "cache_statistics", None)

    def run(self, campaign: SymbolicCampaign,
            injections: Sequence[Injection], query: SearchQuery,
            progress: Optional[ProgressCallback] = None,
            ) -> List[InjectionResult]:
        injections = list(injections)
        if not injections:
            return []
        chunk_size = (self.chunk_size
                      or default_chunk_size(len(injections),
                                            self.workers_hint))
        tasks = decompose_by_chunk(injections, chunk_size)
        # Caps large enough to never trigger: the sweep semantics promise
        # one result per injection, which a capped task would cut short.
        runner = TaskRunner(campaign,
                            max_errors_per_task=2**62,
                            wall_clock_per_task=None)
        done = 0

        def task_progress(_completed: int, _total: int,
                          task_result: TaskResult) -> None:
            # Emit here — once per task, as soon as the executing backend
            # learns the result — so result sinks (checkpoint journaling)
            # see results incrementally, not only after the whole sweep.
            nonlocal done
            assert len(task_result.results) == len(task_result.task.injections), \
                "uncapped task must run every one of its injections"
            for injection, result in zip(task_result.task.injections,
                                         task_result.results):
                self.emit_result(injection, result)
            done += len(task_result.results)
            if progress is not None and task_result.results:
                progress(done, len(injections), task_result.results[-1])

        # Streaming mode: every result still flows through task_progress
        # (above) exactly once; neither the task backend nor this adapter
        # retains the sweep.
        self.task_strategy.retain_results = self.retain_results
        task_results = self.task_strategy.run(runner, tasks, query,
                                              progress=task_progress)
        if not self.retain_results:
            return []
        # Deterministic merge: flatten in task-submission (= sweep) order.
        return [result for task_result in task_results
                for result in task_result.results]


class TaskRunner:
    """Run search tasks under per-task caps and aggregate the statistics."""

    def __init__(self, campaign: SymbolicCampaign,
                 max_errors_per_task: int = 10,
                 wall_clock_per_task: Optional[float] = None) -> None:
        self.campaign = campaign
        self.max_errors_per_task = max_errors_per_task
        self.wall_clock_per_task = wall_clock_per_task

    def run_task(self, task: SearchTask, query: SearchQuery,
                 result_cache: Optional[SearchResultCache] = None) -> TaskResult:
        """Run one task: sweep its injections until a cap is hit."""
        with _obs.get().span("task.run", task=task.identifier,
                             injections=len(task.injections)):
            return self._run_task(task, query, result_cache)

    def _run_task(self, task: SearchTask, query: SearchQuery,
                  result_cache: Optional[SearchResultCache] = None,
                  ) -> TaskResult:
        start = time.monotonic()
        result = TaskResult(task=task)
        for injection in task.injections:
            if result.errors_found >= self.max_errors_per_task:
                result.completed = True
                break
            if (self.wall_clock_per_task is not None
                    and time.monotonic() - start > self.wall_clock_per_task):
                result.completed = False
                break
            injection_result = self.campaign.run_injection(
                injection, query, result_cache=result_cache)
            result.results.append(injection_result)
            result.errors_found += len(injection_result.solutions)
            if not injection_result.completed and not injection_result.found_solutions:
                # The per-injection search hit its own budget without
                # exhausting the space: the task did not complete.
                result.completed = False
        result.elapsed_seconds = time.monotonic() - start
        return result

    def run(self, tasks: Sequence[SearchTask], query: SearchQuery,
            progress: Optional[Callable[[int, int, TaskResult], None]] = None,
            strategy: Optional[TaskExecutionStrategy] = None,
            ) -> TaskCampaignReport:
        report = TaskCampaignReport(query_description=query.description)
        overall_start = time.monotonic()
        if strategy is None:
            strategy = SerialTaskStrategy()
        report.task_results = strategy.run(self, tasks, query, progress=progress)
        report.elapsed_seconds = time.monotonic() - overall_start
        return report
