"""Execution witnesses: how an injected error evaded detection and failed.

The paper stresses that SymPLFIED "can also show an execution trace of how
the error evaded detection and led to the failure", which is what lets a
programmer strengthen the detectors.  A :class:`Witness` couples an injection
with a terminal state found by the search; when the search was run with
``record_trace=True`` the state carries the per-step trace, and the witness
can render the full path from the injection point to the failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors.injector import Injection
from ..isa.program import Program
from ..isa.values import format_value
from ..machine.state import MachineState
from .outcomes import Outcome, classify


@dataclass
class Witness:
    """A concrete explanation of one error that leads to a failure."""

    program: Program
    injection: Injection
    state: MachineState
    golden_output: Optional[Sequence] = None

    @property
    def outcome(self) -> Outcome:
        return classify(self.state, self.golden_output)

    def render(self, max_trace_lines: int = 40) -> str:
        """Human-readable description of the witness."""
        lines: List[str] = []
        lines.append(f"program   : {self.program.name}")
        lines.append(f"injection : {self.injection.label()}")
        lines.append(f"  at source line: {self.program.source_line(self.injection.breakpoint_pc)}")
        lines.append(f"outcome   : {self.outcome.describe()}")
        lines.append(f"steps     : {self.state.steps}, forks: {self.state.forks}")
        if self.state.exception:
            lines.append(f"exception : {self.state.exception}")
        lines.append("final constraints on symbolic locations:")
        lines.append(self.state.constraints.describe())
        if self.state.trace:
            lines.append("execution trace (injection onwards):")
            trace = self.state.trace
            shown = trace if len(trace) <= max_trace_lines else trace[-max_trace_lines:]
            if len(trace) > max_trace_lines:
                lines.append(f"  ... {len(trace) - max_trace_lines} earlier steps elided ...")
            for entry in shown:
                lines.append(f"  [{format_value(entry.pc)}] {entry.text}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def witnesses_from_campaign(program: Program, campaign_result,
                            golden_output: Optional[Sequence] = None) -> List[Witness]:
    """Build witnesses for every solution found by a campaign."""
    witnesses = []
    for injection, solution in campaign_result.solutions():
        witnesses.append(Witness(program=program, injection=injection,
                                 state=solution.state,
                                 golden_output=golden_output))
    return witnesses
