"""Bounded model checking by exhaustive breadth-first search (Section 5.4).

Maude's ``search`` command explores the rewrite graph of the model
breadth-first from the initial state and returns every final state satisfying
the user predicate.  :class:`BoundedModelChecker` reproduces this behaviour
on top of the symbolic executor:

* states are expanded breadth-first, so shallow error manifestations are
  found before deep ones;
* duplicate states (same fingerprint) are explored only once;
* branches whose constraint maps are unsatisfiable never reach the frontier
  (the executor prunes them);
* the search is bounded by the watchdog instruction limit (carried by the
  executor's configuration), a state budget, a wall-clock budget and a cap on
  the number of solutions — mirroring the per-task caps used for the cluster
  runs in Section 6.1 (at most 10 errors and 30 minutes per task).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import obs as _obs
from ..machine.executor import Executor, run_concrete
from ..machine.state import Fingerprint, MachineState, state_contains_err
from .queries import SearchQuery

#: Pickle protocol pinned for stable cross-process cache digests.
_DIGEST_PICKLE_PROTOCOL = 4


def executor_digest(executor: Executor) -> bytes:
    """A content digest of everything an executor contributes to a search.

    The in-memory :class:`SearchResultCache` keys executors by identity; a
    cache shared *between processes* needs a stable stand-in.  The program,
    detectors and execution config together determine the executor's
    behaviour, so their serialized form is digested.  Equal configurations
    built from the same :class:`~repro.parallel.spec.CampaignSpec` produce
    equal digests; a digest mismatch between genuinely equal executors only
    costs a cache miss, never a wrong hit.
    """
    payload = pickle.dumps((executor.program, executor.detectors,
                            executor.config),
                           protocol=_DIGEST_PICKLE_PROTOCOL)
    return hashlib.sha256(payload).digest()


def stable_state_digest(state: MachineState) -> bytes:
    """A content digest of a machine state, canonicalised for sharing.

    Flattens the CoW structure and sorts the memory (overlay insertion order
    is a write-history artifact, not part of the state's meaning) so two
    structurally equal states digest identically regardless of how they were
    produced.
    """
    payload = pickle.dumps(
        (state.pc,
         state.registers.as_tuple(),
         sorted(state.memory.to_dict().items()),
         tuple(state.input),
         state.input_pos,
         tuple(state.output),
         state.constraints,
         state.status,
         state.exception),
        protocol=_DIGEST_PICKLE_PROTOCOL)
    return hashlib.sha256(payload).digest()


@dataclass
class Solution:
    """A terminal state satisfying the search predicate, plus bookkeeping."""

    state: MachineState
    depth: int

    def describe(self) -> str:
        return (f"depth {self.depth}: status={self.state.status.value} "
                f"output={self.state.output_values()!r}")


@dataclass
class SearchStatistics:
    """Counters describing one search run."""

    explored_states: int = 0
    expanded_states: int = 0
    terminal_states: int = 0
    deduplicated_states: int = 0
    pruned_states: int = 0
    max_frontier: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SearchResult:
    """Outcome of a bounded model-checking run."""

    solutions: List[Solution]
    statistics: SearchStatistics
    completed: bool
    stop_reason: str

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    def describe(self) -> str:
        lines = [
            f"solutions        : {len(self.solutions)}",
            f"explored states  : {self.statistics.explored_states}",
            f"terminal states  : {self.statistics.terminal_states}",
            f"deduplicated     : {self.statistics.deduplicated_states}",
            f"completed        : {self.completed} ({self.stop_reason})",
            f"elapsed seconds  : {self.statistics.elapsed_seconds:.3f}",
        ]
        return "\n".join(lines)


@dataclass
class CacheStatistics:
    """Counters describing the effectiveness of a :class:`SearchResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def accumulate(self, other: "CacheStatistics") -> None:
        """Fold another counter set into this one (per-worker aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions

    def describe(self) -> str:
        return (f"lookups={self.lookups} hits={self.hits} "
                f"misses={self.misses} hit_rate={self.hit_rate:.1%} "
                f"stores={self.stores} evictions={self.evictions}")


class SearchResultCache:
    """Memoises completed searches across injection experiments.

    A bounded model-checking run is a pure function of the executor (program,
    detectors, execution config), the injected initial state, the query and
    the search caps: two injections whose corrupted states share a
    fingerprint (and step count, which feeds the watchdog bound) explore
    exactly the same space and return identical results.  The campaign and
    task runners thread one cache through every injection of a program sweep
    — and the parallel workers keep one per process — so that convergent
    injection points are searched only once.

    Keys embed the executor object itself (compared by identity; the cache
    keeps it alive), so one cache can be shared across checkers — even over
    different programs or configs — without cross-talk.  The query, however,
    is identified by its description: generated queries (and any query reused
    across a campaign) satisfy this; callers mixing distinct predicates under
    one description must use separate caches.  Mutating an executor or its
    config after cached searches invalidates this reasoning; build a fresh
    executor (or cache) instead.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self.statistics = CacheStatistics()
        self._entries: Dict[Tuple, SearchResult] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def make_key(executor: Executor, state: MachineState, query: SearchQuery,
                 caps: Tuple) -> Tuple:
        # The executor participates by identity (default object hash); the
        # key tuple holds a strong reference, so its id cannot be recycled.
        return (executor, state.fingerprint(), state.steps,
                query.description, caps)

    def get(self, key: Tuple) -> Optional[SearchResult]:
        result = self._entries.get(key)
        if result is None:
            self.statistics.misses += 1
        else:
            self.statistics.hits += 1
            # True LRU: refresh the entry's position so a hot key recycled
            # by every injection point cannot be evicted by colder ones.
            self._entries[key] = self._entries.pop(key)
        return result

    def store(self, key: Tuple, result: SearchResult) -> None:
        if self.max_entries is not None and key not in self._entries \
                and len(self._entries) >= self.max_entries:
            # Drop the least-recently-used entry (get() refreshes recency).
            self._entries.pop(next(iter(self._entries)))
            self.statistics.evictions += 1
        self._entries[key] = result
        self.statistics.stores += 1


class BoundedModelChecker:
    """Breadth-first exhaustive search over symbolic machine states."""

    def __init__(self, executor: Executor,
                 max_solutions: int = 10,
                 max_states: int = 250_000,
                 wall_clock_seconds: Optional[float] = None,
                 deduplicate: bool = True,
                 concretize: bool = True,
                 result_cache: Optional[SearchResultCache] = None) -> None:
        self.executor = executor
        self.max_solutions = max_solutions
        self.max_states = max_states
        self.wall_clock_seconds = wall_clock_seconds
        self.deduplicate = deduplicate
        # When a state no longer holds any err value its future is
        # deterministic; finishing it with the fast concrete interpreter is a
        # pure optimisation that does not change the set of final states.
        self.concretize = concretize
        # Optional cross-search memoisation (see SearchResultCache).
        self.result_cache = result_cache

    def search(self, initial_states: Iterable[MachineState],
               query: SearchQuery) -> SearchResult:
        """Explore every execution reachable from *initial_states*.

        Returns all terminal states satisfying *query*, up to the configured
        caps.  ``completed`` is True when the whole reachable space was
        explored (so the absence of solutions is a *proof* that the program is
        resilient to the injected error class, per the paper's output #1).
        """
        start_time = time.monotonic()
        steps_before = getattr(self.executor, "steps_executed", 0)
        statistics = SearchStatistics()
        solutions: List[Solution] = []
        frontier: deque = deque()
        # Fingerprints hash in O(1) (rolling hashes maintained by the state's
        # write API) and compare structurally on collision, so membership
        # tests here cost O(1) expected without risking a false merge.
        seen: Set[Fingerprint] = set()
        stop_reason = "exhausted"
        completed = True

        for state in initial_states:
            frontier.append((state, 0))

        while frontier:
            statistics.max_frontier = max(statistics.max_frontier, len(frontier))

            if len(solutions) >= self.max_solutions:
                stop_reason = "solution cap reached"
                completed = False
                break
            if statistics.explored_states >= self.max_states:
                stop_reason = "state budget exhausted"
                completed = False
                break
            if (self.wall_clock_seconds is not None
                    and time.monotonic() - start_time > self.wall_clock_seconds):
                stop_reason = "wall-clock budget exhausted"
                completed = False
                break

            state, depth = frontier.popleft()
            statistics.explored_states += 1

            if state.is_running and self.concretize and not state_contains_err(state):
                run_concrete(self.executor.program, state, self.executor.detectors,
                             max_steps=self.executor.config.max_steps)

            if not state.is_running:
                statistics.terminal_states += 1
                if query(state):
                    solutions.append(Solution(state=state, depth=depth))
                continue

            successors = self.executor.step(state)
            statistics.expanded_states += 1
            if not successors:
                statistics.pruned_states += 1
                continue
            for successor in successors:
                if self.deduplicate:
                    fingerprint = successor.fingerprint()
                    if fingerprint in seen:
                        statistics.deduplicated_states += 1
                        continue
                    seen.add(fingerprint)
                frontier.append((successor, depth + 1))

        statistics.elapsed_seconds = time.monotonic() - start_time
        hub = _obs.get()
        if hub.enabled:
            # Epilogue publication: one batch of counter updates per search,
            # never per state — the hot loop stays untelemetered.
            hub.count("search.runs")
            hub.count("search.explored", statistics.explored_states)
            hub.count("search.terminal", statistics.terminal_states)
            hub.count("search.deduplicated", statistics.deduplicated_states)
            hub.observe("search.seconds", statistics.elapsed_seconds)
            steps = getattr(self.executor, "steps_executed", None)
            if steps is not None:
                hub.count("executor.steps", steps - steps_before)
        return SearchResult(solutions=solutions, statistics=statistics,
                            completed=completed, stop_reason=stop_reason)

    def _caps_key(self) -> Tuple:
        return (self.max_solutions, self.max_states, self.wall_clock_seconds,
                self.deduplicate, self.concretize)

    def search_single(self, initial_state: MachineState,
                      query: SearchQuery) -> SearchResult:
        """Search from a single initial state, consulting the result cache."""
        if self.result_cache is None:
            return self.search([initial_state], query)
        key = self.result_cache.make_key(self.executor, initial_state, query,
                                         self._caps_key())
        cached = self.result_cache.get(key)
        hub = _obs.get()
        if cached is not None:
            if hub.enabled:
                hub.count("cache.hits")
            return cached
        if hub.enabled:
            hub.count("cache.misses")
        result = self.search([initial_state], query)
        self.result_cache.store(key, result)
        return result
