"""Bounded model checking by exhaustive breadth-first search (Section 5.4).

Maude's ``search`` command explores the rewrite graph of the model
breadth-first from the initial state and returns every final state satisfying
the user predicate.  :class:`BoundedModelChecker` reproduces this behaviour
on top of the symbolic executor:

* states are expanded breadth-first, so shallow error manifestations are
  found before deep ones;
* duplicate states (same fingerprint) are explored only once;
* branches whose constraint maps are unsatisfiable never reach the frontier
  (the executor prunes them);
* the search is bounded by the watchdog instruction limit (carried by the
  executor's configuration), a state budget, a wall-clock budget and a cap on
  the number of solutions — mirroring the per-task caps used for the cluster
  runs in Section 6.1 (at most 10 errors and 30 minutes per task).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from ..machine.executor import Executor, run_concrete
from ..machine.state import MachineState, state_contains_err
from .queries import SearchQuery


@dataclass
class Solution:
    """A terminal state satisfying the search predicate, plus bookkeeping."""

    state: MachineState
    depth: int

    def describe(self) -> str:
        return (f"depth {self.depth}: status={self.state.status.value} "
                f"output={self.state.output_values()!r}")


@dataclass
class SearchStatistics:
    """Counters describing one search run."""

    explored_states: int = 0
    expanded_states: int = 0
    terminal_states: int = 0
    deduplicated_states: int = 0
    pruned_states: int = 0
    max_frontier: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SearchResult:
    """Outcome of a bounded model-checking run."""

    solutions: List[Solution]
    statistics: SearchStatistics
    completed: bool
    stop_reason: str

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    def describe(self) -> str:
        lines = [
            f"solutions        : {len(self.solutions)}",
            f"explored states  : {self.statistics.explored_states}",
            f"terminal states  : {self.statistics.terminal_states}",
            f"deduplicated     : {self.statistics.deduplicated_states}",
            f"completed        : {self.completed} ({self.stop_reason})",
            f"elapsed seconds  : {self.statistics.elapsed_seconds:.3f}",
        ]
        return "\n".join(lines)


class BoundedModelChecker:
    """Breadth-first exhaustive search over symbolic machine states."""

    def __init__(self, executor: Executor,
                 max_solutions: int = 10,
                 max_states: int = 250_000,
                 wall_clock_seconds: Optional[float] = None,
                 deduplicate: bool = True,
                 concretize: bool = True) -> None:
        self.executor = executor
        self.max_solutions = max_solutions
        self.max_states = max_states
        self.wall_clock_seconds = wall_clock_seconds
        self.deduplicate = deduplicate
        # When a state no longer holds any err value its future is
        # deterministic; finishing it with the fast concrete interpreter is a
        # pure optimisation that does not change the set of final states.
        self.concretize = concretize

    def search(self, initial_states: Iterable[MachineState],
               query: SearchQuery) -> SearchResult:
        """Explore every execution reachable from *initial_states*.

        Returns all terminal states satisfying *query*, up to the configured
        caps.  ``completed`` is True when the whole reachable space was
        explored (so the absence of solutions is a *proof* that the program is
        resilient to the injected error class, per the paper's output #1).
        """
        start_time = time.monotonic()
        statistics = SearchStatistics()
        solutions: List[Solution] = []
        frontier: deque = deque()
        seen: Set[Tuple] = set()
        stop_reason = "exhausted"
        completed = True

        for state in initial_states:
            frontier.append((state, 0))

        while frontier:
            statistics.max_frontier = max(statistics.max_frontier, len(frontier))

            if len(solutions) >= self.max_solutions:
                stop_reason = "solution cap reached"
                completed = False
                break
            if statistics.explored_states >= self.max_states:
                stop_reason = "state budget exhausted"
                completed = False
                break
            if (self.wall_clock_seconds is not None
                    and time.monotonic() - start_time > self.wall_clock_seconds):
                stop_reason = "wall-clock budget exhausted"
                completed = False
                break

            state, depth = frontier.popleft()
            statistics.explored_states += 1

            if state.is_running and self.concretize and not state_contains_err(state):
                run_concrete(self.executor.program, state, self.executor.detectors,
                             max_steps=self.executor.config.max_steps)

            if not state.is_running:
                statistics.terminal_states += 1
                if query(state):
                    solutions.append(Solution(state=state, depth=depth))
                continue

            successors = self.executor.step(state)
            statistics.expanded_states += 1
            if not successors:
                statistics.pruned_states += 1
                continue
            for successor in successors:
                if self.deduplicate:
                    fingerprint = successor.fingerprint()
                    if fingerprint in seen:
                        statistics.deduplicated_states += 1
                        continue
                    seen.add(fingerprint)
                frontier.append((successor, depth + 1))

        statistics.elapsed_seconds = time.monotonic() - start_time
        return SearchResult(solutions=solutions, statistics=statistics,
                            completed=completed, stop_reason=stop_reason)

    def search_single(self, initial_state: MachineState,
                      query: SearchQuery) -> SearchResult:
        """Convenience wrapper for a single initial state."""
        return self.search([initial_state], query)
