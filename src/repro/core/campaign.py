"""Symbolic fault-injection campaigns (paper Section 6.1).

A campaign sweeps an error class over a program: for every injection point
enumerated by the class (for example "``err`` in every register used by every
instruction"), it

1. runs the program concretely up to the breakpoint (guaranteeing the fault
   is activated),
2. replaces the target location's contents with ``err``,
3. model-checks the resulting symbolic state against a search query
   (e.g. "halted with a printed value other than 1"), and
4. records the solutions, the search statistics and whether the per-injection
   search completed.

The paper splits such a campaign into independent search *tasks* executed on
a cluster; the decomposition and the aggregate completion statistics live in
:mod:`repro.core.tasks`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..detectors import DetectorSet, EMPTY_DETECTORS
from ..errors.injector import Injection, prepare_injected_state
from ..errors.models import ErrorClass, RegisterFileError
from ..faults.models import FaultModel, deterministic_sample
from ..isa.program import Program
from ..isa.values import ERR
from ..machine.executor import ExecutionConfig, Executor
from ..machine.state import MachineState, initial_state
from .outcomes import Outcome, classify
from .queries import SearchQuery
from .search import (BoundedModelChecker, SearchResult, SearchResultCache,
                     Solution)

#: Callback invoked after each injection: (done, total, last result).
ProgressCallback = Callable[[int, int, "InjectionResult"], None]

#: Callback invoked once per completed injection experiment, as soon as the
#: executing strategy learns the result (for the pool and distributed
#: backends that is when the containing chunk completes).  Unlike the
#: ProgressCallback — which the pool backends only call with the *last*
#: result of a chunk — the sink sees every result exactly once, which is
#: what checkpoint journaling needs.
ResultSink = Callable[["Injection", "InjectionResult"], None]


@dataclass
class InjectionResult:
    """Result of model checking a single injection experiment."""

    injection: Injection
    activated: bool
    search: Optional[SearchResult] = None

    @property
    def found_solutions(self) -> bool:
        return self.search is not None and self.search.found

    @property
    def solutions(self) -> List[Solution]:
        return self.search.solutions if self.search is not None else []

    @property
    def completed(self) -> bool:
        return self.search.completed if self.search is not None else True


@dataclass
class CampaignResult:
    """Aggregate result of a symbolic campaign."""

    query_description: str
    results: List[InjectionResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def injections_run(self) -> int:
        return len(self.results)

    @property
    def injections_activated(self) -> int:
        return sum(1 for r in self.results if r.activated)

    @property
    def injections_with_solutions(self) -> int:
        return sum(1 for r in self.results if r.found_solutions)

    @property
    def total_solutions(self) -> int:
        return sum(len(r.solutions) for r in self.results)

    @property
    def all_completed(self) -> bool:
        return all(r.completed for r in self.results)

    def solutions(self) -> List[Tuple[Injection, Solution]]:
        found = []
        for result in self.results:
            for solution in result.solutions:
                found.append((result.injection, solution))
        return found

    def outcomes(self, golden_output: Optional[Sequence] = None
                 ) -> List[Tuple[Injection, Outcome]]:
        """Classify every solution state against the golden output."""
        return [(injection, classify(solution.state, golden_output))
                for injection, solution in self.solutions()]

    def describe(self) -> str:
        lines = [
            f"query                      : {self.query_description}",
            f"injections run             : {self.injections_run}",
            f"injections activated       : {self.injections_activated}",
            f"injections with solutions  : {self.injections_with_solutions}",
            f"total solutions            : {self.total_solutions}",
            f"elapsed seconds            : {self.elapsed_seconds:.3f}",
        ]
        return "\n".join(lines)


class ExecutionStrategy:
    """How a campaign's injection experiments are executed.

    The paper distributes its searches over a cluster; this abstraction keeps
    :class:`SymbolicCampaign` agnostic of *where* each experiment runs.  The
    serial strategy below preserves the original single-process behaviour;
    :mod:`repro.parallel` provides a multiprocessing strategy that shards the
    sweep across a worker pool and merges results deterministically, and
    :mod:`repro.distributed` / :mod:`repro.net` run the same sweep over a
    broker.  Wrappers compose: checkpointing, recording into a
    :class:`~repro.results.ResultStore`, progress reporting.

    The contract for :meth:`run`: given the same ``(campaign, injections,
    query)``, every strategy must return results equal to the serial
    strategy's, in submission order — backends may only change *where*
    searches run, never *what* they return (`repro bench
    --expect-identical` enforces this byte-for-byte across backends, for
    every fault model including multi-error bursts).  Each injection
    experiment is a pure function of the campaign identity, which is what
    makes work stealing, re-execution after lease expiry and checkpoint
    resume safe.
    """

    name: str = "abstract"

    #: Optional per-result hook (see :data:`ResultSink`).  Strategies must
    #: call :meth:`emit_result` for every completed injection; wrappers such
    #: as the checkpointing strategy install a sink here.
    result_sink: Optional[ResultSink] = None

    #: When False, the strategy streams every result through
    #: :meth:`emit_result` but does not retain it: :meth:`run` returns an
    #: empty list and the coordinator's memory stays flat no matter how
    #: large the sweep is.  Only meaningful with a sink (or a
    #: :meth:`make_campaign_result` override) that consumes the stream —
    #: see :class:`repro.results.recording.RecordingStrategy`.
    retain_results: bool = True

    def emit_result(self, injection: Injection, result: InjectionResult) -> None:
        if self.result_sink is not None:
            self.result_sink(injection, result)

    def make_campaign_result(self, query: SearchQuery,
                             results: List[InjectionResult]) -> CampaignResult:
        """Build the campaign result from this strategy's view of the sweep.

        The default wraps the retained result list; streaming strategies
        override this to return a store-backed view instead.
        """
        campaign = CampaignResult(query_description=query.description)
        campaign.results = results
        return campaign

    def run(self, campaign: "SymbolicCampaign", injections: Sequence[Injection],
            query: SearchQuery,
            progress: Optional[ProgressCallback] = None) -> List[InjectionResult]:
        """Execute every injection and return results in submission order."""
        raise NotImplementedError


class SerialExecutionStrategy(ExecutionStrategy):
    """Run every injection in-process, one after the other."""

    name = "serial"

    def __init__(self, result_cache: Optional[SearchResultCache] = None) -> None:
        self.result_cache = result_cache

    def run(self, campaign: "SymbolicCampaign", injections: Sequence[Injection],
            query: SearchQuery,
            progress: Optional[ProgressCallback] = None) -> List[InjectionResult]:
        results: List[InjectionResult] = []
        for index, injection in enumerate(injections):
            result = campaign.run_injection(injection, query,
                                            result_cache=self.result_cache)
            if self.retain_results:
                results.append(result)
            self.emit_result(injection, result)
            if progress is not None:
                progress(index + 1, len(injections), result)
        return results


class SymbolicCampaign:
    """Sweep an error class over a program with symbolic fault injection."""

    def __init__(self,
                 program: Program,
                 input_values: Sequence[int] = (),
                 memory: Optional[Dict[int, int]] = None,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 error_class: Optional[ErrorClass] = None,
                 fault_model: Optional[FaultModel] = None,
                 execution_config: Optional[ExecutionConfig] = None,
                 max_solutions_per_injection: int = 10,
                 max_states_per_injection: int = 50_000,
                 wall_clock_per_injection: Optional[float] = None,
                 deduplicate_states: bool = True,
                 isa: Optional[str] = None) -> None:
        self.program = program
        self.input_values = tuple(input_values)
        self.memory = dict(memory) if memory else {}
        self.detectors = detectors
        self.error_class = error_class or RegisterFileError()
        #: When set, injections are planned by this pluggable model
        #: (:mod:`repro.faults`) instead of the legacy error class.
        self.fault_model = fault_model
        self.execution_config = execution_config or ExecutionConfig()
        self.max_solutions_per_injection = max_solutions_per_injection
        self.max_states_per_injection = max_states_per_injection
        self.wall_clock_per_injection = wall_clock_per_injection
        #: Search-state deduplication (on by default).  The parity census
        #: turns it off: dedup collapses an err-driven loop into a state
        #: cycle before the lineage reaches the watchdog, so a deduplicating
        #: any-outcome search under-reports ``hang`` terminals.
        self.deduplicate_states = deduplicate_states
        #: ISA frontend the program was retargeted through, if any; pure
        #: provenance metadata pinned into checkpoint headers and specs.
        self.isa = isa
        self._executor = Executor(program, detectors, self.execution_config)

    # ------------------------------------------------------------ enumeration

    def fresh_initial_state(self) -> MachineState:
        return initial_state(input_values=self.input_values, memory=self.memory)

    def enumerate_injections(self,
                             pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        """All injections of the campaign's fault model or error class."""
        if self.fault_model is not None:
            return self.fault_model.enumerate(self.program, memory=self.memory,
                                              pcs=pcs)
        return self.error_class.enumerate(self.program, pcs=pcs)

    def plan_injections(self, sample: Optional[int] = None,
                        seed: Optional[int] = None) -> List[Injection]:
        """Plan the sweep: the full enumerated space, or a seeded sample.

        Planning happens once, on the coordinator, before any chunking or
        distribution — so a sampled sweep is the same list of specs no
        matter which backend executes it.
        """
        if self.fault_model is not None:
            return self.fault_model.plan(self.program, memory=self.memory,
                                         sample=sample, seed=seed)
        injections = self.enumerate_injections()
        if sample is not None:
            injections = deterministic_sample(injections, sample, seed)
        return injections

    # -------------------------------------------------------------- execution

    def run_injection(self, injection: Injection, query: SearchQuery,
                      result_cache: Optional[SearchResultCache] = None,
                      ) -> InjectionResult:
        """Model-check a single injection experiment.

        A :class:`~repro.faults.spec.FaultSpec` carries its own corruption
        value; a plain :class:`Injection` injects the symbolic ``ERR``.
        """
        hub = _obs.get()
        if hub.enabled:
            # Dual path so the disabled sweep never pays for the label.
            with hub.span("search.solve", injection=injection.label()):
                return self._run_injection(injection, query, result_cache)
        return self._run_injection(injection, query, result_cache)

    def _run_injection(self, injection: Injection, query: SearchQuery,
                       result_cache: Optional[SearchResultCache] = None,
                       ) -> InjectionResult:
        injected = prepare_injected_state(
            self.program, injection, self.fresh_initial_state(),
            value=getattr(injection, "value", ERR),
            detectors=self.detectors,
            max_prefix_steps=self.execution_config.max_steps)
        if injected is None:
            return InjectionResult(injection=injection, activated=False)
        checker = BoundedModelChecker(
            self._executor,
            max_solutions=self.max_solutions_per_injection,
            max_states=self.max_states_per_injection,
            wall_clock_seconds=self.wall_clock_per_injection,
            deduplicate=self.deduplicate_states,
            result_cache=result_cache)
        result = checker.search_single(injected, query)
        return InjectionResult(injection=injection, activated=True, search=result)

    def run(self, query: SearchQuery,
            injections: Optional[Sequence[Injection]] = None,
            progress: Optional[ProgressCallback] = None,
            strategy: Optional[ExecutionStrategy] = None) -> CampaignResult:
        """Run the whole campaign (or the provided subset of injections).

        *strategy* selects how the experiments are executed; the default
        serial strategy reproduces the original single-process sweep, and any
        strategy must return one result per injection, in submission order.
        """
        campaign_start = time.monotonic()
        if injections is None:
            injections = self.enumerate_injections()
        if strategy is None:
            strategy = SerialExecutionStrategy()
        with _obs.get().span("campaign.run", program=self.program.name,
                             strategy=strategy.name,
                             injections=len(injections)):
            results = strategy.run(self, injections, query,
                                   progress=progress)
        campaign = strategy.make_campaign_result(query, results)
        campaign.elapsed_seconds = time.monotonic() - campaign_start
        return campaign
