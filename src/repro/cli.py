"""Command-line interface for the SymPLFIED reproduction.

The CLI mirrors how the paper's tool is used: feed it a program (SymPLFIED
assembly, a minic source file, a MIPS file or the name of a bundled
workload), optionally a detector file in the ``det(...)`` format, pick an
error class and an outcome query, and it either runs the program, runs a
concrete fault-injection campaign, or runs the symbolic campaign and reports
every error that evades detection.

Examples::

    python -m repro run --workload factorial --input 5
    python -m repro analyze --workload factorial --error-class register \
        --query err-output --max-injections 20
    python -m repro concrete --workload tcas --max-injections 50
    python -m repro analyze --program prog.asm --detectors dets.txt \
        --query wrong-final-value --expected 1
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from .analysis import campaign_outcome_summary, format_witnesses
from .concrete import ConcreteCampaign, printed_value_labeler
from .core import SymbolicCampaign, witnesses_from_campaign
from .core.campaign import SerialExecutionStrategy
from .detectors import DetectorSet, EMPTY_DETECTORS
from .errors import STANDARD_ERROR_CLASSES, error_class
from .faults import FAULT_MODELS, fault_model
from .frontend import generate_query, translate_mips
from .isa import assemble
from .lang import compile_source
from .machine import ExecutionConfig, run_concrete
from .programs import WORKLOADS, load_workload
from .programs.base import Workload


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be an integer, got {text!r}") \
            from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be an integer, got {text!r}") \
            from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be a number, got {text!r}") \
            from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _load_detectors(path: Optional[str]) -> DetectorSet:
    if path is None:
        return EMPTY_DETECTORS
    with open(path, "r", encoding="utf-8") as handle:
        return DetectorSet.parse(handle.read())


def _load_workload(args: argparse.Namespace) -> Workload:
    """Build the workload from --workload / --program / --minic / --mips."""
    sources = [name for name in ("workload", "program", "minic", "mips")
               if getattr(args, name, None)]
    if len(sources) != 1:
        raise SystemExit("exactly one of --workload, --program, --minic, --mips "
                         "must be given")
    detectors = _load_detectors(getattr(args, "detectors", None))
    input_values = tuple(getattr(args, "input", ()) or ())

    if args.workload:
        workload = load_workload(args.workload)
        if input_values:
            workload.default_input = input_values
        if len(detectors):
            workload.detectors = detectors
    elif args.program:
        with open(args.program, "r", encoding="utf-8") as handle:
            program = assemble(handle.read(), name=args.program)
        workload = Workload(name=args.program, program=program,
                            detectors=detectors, default_input=input_values,
                            recommended_max_steps=args.max_steps)
    elif args.minic:
        with open(args.minic, "r", encoding="utf-8") as handle:
            compiled = compile_source(handle.read(), name=args.minic)
        workload = Workload(name=args.minic, program=compiled.program,
                            data_segment=compiled.initial_memory(),
                            detectors=detectors, default_input=input_values,
                            compiled=compiled,
                            recommended_max_steps=args.max_steps)
    else:
        with open(args.mips, "r", encoding="utf-8") as handle:
            program = translate_mips(handle.read(), name=args.mips)
        workload = Workload(name=args.mips, program=program,
                            detectors=detectors, default_input=input_values,
                            recommended_max_steps=args.max_steps)
    isa = getattr(args, "isa", None)
    if isa is not None:
        # Registry lookup (not argparse choices=) so runtime-registered
        # frontends work; unknown names exit with the registry's one-liner.
        try:
            workload = workload.retargeted(isa)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    return workload


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        help="name of a bundled workload")
    parser.add_argument("--program", help="path to a SymPLFIED assembly file")
    parser.add_argument("--minic", help="path to a minic source file")
    parser.add_argument("--mips", help="path to a MIPS assembly file")
    parser.add_argument("--isa", default=None, metavar="NAME",
                        help="retarget the workload through a registered ISA "
                             "frontend (e.g. mips, rv32im) before analysis")
    parser.add_argument("--detectors", help="path to a det(...) detector file")
    parser.add_argument("--input", type=int, nargs="*", default=None,
                        help="input values for the program's read instructions")
    parser.add_argument("--max-steps", type=int, default=20_000,
                        help="watchdog bound on executed instructions")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SymPLFIED: symbolic program-level fault injection "
                    "and error detection (reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a program concretely (no faults) and print its output")
    _add_common_arguments(run_parser)

    analyze = subparsers.add_parser(
        "analyze", help="symbolic fault-injection campaign (the SymPLFIED analysis)")
    _add_common_arguments(analyze)
    analyze.add_argument("--error-class", default=None,
                         choices=sorted(STANDARD_ERROR_CLASSES),
                         help="legacy hardware error class to sweep "
                              "(default: register; mutually exclusive with "
                              "--fault-model)")
    analyze.add_argument("--fault-model", default=None, metavar="NAME",
                         help="pluggable fault model planning the sweep "
                              "(repro.faults registry, e.g. "
                              f"{', '.join(sorted(FAULT_MODELS))}); combine "
                              "with --sample/--seed to sweep a deterministic "
                              "subset of its space")
    analyze.add_argument("--burst-k", type=int, default=None, metavar="K",
                         help="simultaneous faults per experiment for "
                              "--fault-model burst (default: 2; a burst "
                              "needs K >= 2)")
    analyze.add_argument("--sample", type=_positive_int, default=None,
                         help="sweep a deterministic sample of this many "
                              "injections drawn from the selected model's "
                              "enumerated space (each model enumerates its "
                              "own space — burst and bitflip spaces are far "
                              "larger than register's); a sample larger "
                              "than the space clamps with a warning")
    analyze.add_argument("--seed", type=int, default=None,
                         help="seed for --sample (default: 0; the same "
                              "model, seed and sample size pick the same "
                              "injections on every backend)")
    analyze.add_argument("--query", default="undetected-failure",
                         choices=("err-output", "incorrect-output",
                                  "wrong-final-value", "crash", "hang",
                                  "undetected-failure", "latent-err",
                                  "any-outcome"),
                         help="outcome to search for (any-outcome records "
                              "every terminal state — the parity-study "
                              "census)")
    analyze.add_argument("--expected", type=int, default=None,
                         help="expected final printed value (wrong-final-value query)")
    analyze.add_argument("--max-injections", type=_positive_int, default=None,
                         help="cap on the number of injections swept "
                              "(must be >= 1; omit it to sweep everything)")
    analyze.add_argument("--max-solutions", type=int, default=10,
                         help="per-injection cap on reported errors")
    analyze.add_argument("--max-states", type=int, default=20_000,
                         help="per-injection cap on explored states")
    analyze.add_argument("--no-dedup", action="store_true",
                         help="disable search-state deduplication so "
                              "looping lineages run to the symbolic "
                              "watchdog instead of collapsing into a state "
                              "cycle (needed for an any-outcome census "
                              "that must report hang terminals)")
    analyze.add_argument("--control-fork-domain", default="labels",
                         choices=("labels", "targets", "all", "exception_only"))
    analyze.add_argument("--witnesses", type=int, default=3,
                         help="number of witnesses to print")
    analyze.add_argument("--backend", default=None,
                         choices=("serial", "pool", "distributed"),
                         help="execution backend (default: serial, or pool "
                              "when --workers > 1)")
    analyze.add_argument("--workers", type=_nonnegative_int, default=1,
                         help="worker processes for the injection sweep "
                              "(1 = serial, the paper's single-host run; "
                              "0 = distributed backend only, rely on "
                              "external workers attached to --queue)")
    analyze.add_argument("--chunk-size", type=_positive_int, default=None,
                         help="injections per work unit "
                              "(default: a few chunks per worker)")
    analyze.add_argument("--granularity", default="chunk",
                         choices=("chunk", "task"),
                         help="distribution unit: raw injection chunks, or "
                              "whole paper-style search tasks (Section 6.1) "
                              "through the task-strategy seam")
    analyze.add_argument("--queue", default=None,
                         help="queue for the distributed backend: a broker "
                              "directory, or tcp://HOST:PORT of a running "
                              "'repro broker' (default: a private temporary "
                              "directory)")
    analyze.add_argument("--lease-seconds", type=_positive_float, default=60.0,
                         help="distributed-backend claim lease; a worker "
                              "silent this long forfeits its task")
    analyze.add_argument("--shared-cache", default=None,
                         help="path to a cross-process search-result cache "
                              "database shared by all workers")
    analyze.add_argument("--checkpoint", default=None,
                         help="journal completed injections to this file so "
                              "a killed campaign can be resumed")
    analyze.add_argument("--resume", action="store_true",
                         help="skip injections already completed in the "
                              "--checkpoint journal")
    analyze.add_argument("--results", default=None, metavar="PATH",
                         help="append the campaign to a sqlite results "
                              "warehouse; the coordinator streams each "
                              "result into the store and incremental "
                              "aggregates instead of retaining the sweep "
                              "in memory (query it with 'repro report')")
    analyze.add_argument("--compare-concrete", action="store_true",
                         help="after the campaign, run the symbolic-vs-"
                              "concrete parity study over the same "
                              "injection points: Monte-Carlo single-bit "
                              "flips through the concrete simulator, "
                              "tabulated against the symbolic outcome "
                              "classes per point (paper Section 6.3)")
    analyze.add_argument("--progress", action="store_true",
                         help="report sweep progress on stderr")
    analyze.add_argument("--telemetry", default=None, metavar="PATH",
                         help="record spans, events and metrics from the "
                              "campaign (coordinator and workers) to this "
                              "JSONL file; campaign stdout is unaffected")
    analyze.add_argument("--telemetry-prometheus", default=None,
                         metavar="PATH",
                         help="additionally write the final merged metrics "
                              "in Prometheus text exposition format")

    concrete = subparsers.add_parser(
        "concrete", help="concrete (SimpleScalar-style) fault-injection campaign")
    _add_common_arguments(concrete)
    concrete.add_argument("--max-injections", type=_positive_int, default=None,
                          help="cap on the number of injections swept "
                               "(must be >= 1; omit it to sweep everything)")
    concrete.add_argument("--expected-values", type=int, nargs="*", default=None,
                          help="printed values that get their own outcome row")

    broker = subparsers.add_parser(
        "broker", help="TCP task broker: serve one campaign queue to "
                       "workers and coordinators that share no filesystem")
    broker.add_argument("--listen", default="127.0.0.1:0",
                        help="HOST:PORT to listen on (port 0 picks a free "
                             "port and prints it)")
    broker.add_argument("--lease-seconds", type=_positive_float, default=60.0,
                        help="default claim lease for workers that do not "
                             "request their own")
    broker.add_argument("--connection-timeout", type=_positive_float,
                        default=600.0,
                        help="drop connections idle for this many seconds")
    broker.add_argument("--telemetry", default=None, metavar="PATH",
                        help="record periodic broker.heartbeat events "
                             "(queue depth, claims, op counts) to this "
                             "JSONL file")
    broker.add_argument("--heartbeat-seconds", type=_positive_float,
                        default=5.0,
                        help="interval between --telemetry heartbeat events")

    worker = subparsers.add_parser(
        "worker", help="standalone campaign worker: drain tasks from a "
                       "distributed queue")
    worker.add_argument("--queue", required=True,
                        help="queue shared with the coordinator: a broker "
                             "directory, or tcp://HOST:PORT of a running "
                             "'repro broker'")
    worker.add_argument("--poll-interval", type=_positive_float, default=0.1,
                        help="seconds between queue polls when idle")
    worker.add_argument("--max-idle", type=_positive_float, default=None,
                        help="exit after this many idle seconds "
                             "(default: wait until the queue drains)")
    worker.add_argument("--manifest-timeout", type=_positive_float, default=120.0,
                        help="seconds to wait for the campaign manifest")
    worker.add_argument("--lease-seconds", type=_positive_float, default=60.0,
                        help="claim lease duration before a task is presumed "
                             "orphaned")
    worker.add_argument("--progress", action="store_true",
                        help="report completed tasks on stderr")
    worker.add_argument("--telemetry", default=None, metavar="PATH",
                        help="record this worker's spans, events and metrics "
                             "to a JSONL file (in addition to the snapshots "
                             "shipped back to the coordinator)")

    report = subparsers.add_parser(
        "report", help="cross-campaign queries over a results warehouse "
                       "(outcome distributions, latent-err rates, "
                       "per-fault-model coverage)")
    report.add_argument("--results", default=None, metavar="PATH",
                        help="sqlite results store written by 'repro analyze "
                             "--results' or 'repro bench'")
    report.add_argument("--parity", action="store_true",
                        help="print the symbolic-vs-bit-flip parity table "
                             "instead of the aggregate report (joins each "
                             "program's bitflip campaign against its "
                             "symbolic campaigns per injection point)")
    report.add_argument("--campaign", type=int, default=None,
                        help="report a single campaign id "
                             "(default: whole-warehouse summary)")
    report.add_argument("--telemetry", default=None, metavar="PATH",
                        help="summarise a telemetry JSONL event log "
                             "(span timings, counters, per-worker "
                             "throughput, lease health)")

    top = subparsers.add_parser(
        "top", help="live ops view of a running 'repro broker': queue "
                    "depth, claims, op rates and lease expiries")
    top.add_argument("--queue", required=True,
                     help="tcp://HOST:PORT of a running 'repro broker'")
    top.add_argument("--interval", type=_positive_float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=_positive_int, default=None,
                     help="exit after this many refreshes "
                          "(default: run until interrupted)")
    top.add_argument("--once", action="store_true",
                     help="print a single status frame and exit")
    top.add_argument("--prometheus", action="store_true",
                     help="emit Prometheus text format instead of the "
                          "human-readable frame")

    from .results.bench import add_bench_arguments
    bench = subparsers.add_parser(
        "bench", help="unified workload driver: run the campaign matrix and "
                      "emit a BENCH_<sha>.json trajectory point, or check "
                      "backend equivalence with --expect-identical")
    add_bench_arguments(bench)

    return parser


def _command_run(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    state = workload.initial_state()
    run_concrete(workload.program, state, workload.detectors,
                 max_steps=args.max_steps)
    print(f"program  : {workload.program.describe()}")
    print(f"status   : {state.status.value}"
          + (f" ({state.exception})" if state.exception else ""))
    print(f"steps    : {state.steps}")
    print(f"output   : {list(state.output_values())}")
    return 0 if state.status.value == "halted" else 1


def _validated_queue(queue: Optional[str]) -> Optional[str]:
    """Reject unknown ``--queue`` schemes and malformed ``tcp://`` locators
    with a one-line error instead of a traceback deep in the backend."""
    if queue is None:
        return None
    from .distributed.broker import validate_queue_locator
    try:
        validate_queue_locator(queue)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    return queue


def _resolve_backend(args: argparse.Namespace) -> str:
    """Pick the execution backend, validating flag combinations."""
    backend = args.backend
    if backend is None:
        backend = "pool" if args.workers > 1 else "serial"
    if backend == "serial" and args.workers > 1:
        raise SystemExit("--backend serial cannot use --workers > 1; pick "
                         "--backend pool or --backend distributed")
    if args.workers == 0 and backend != "distributed":
        raise SystemExit("--workers 0 (external workers only) requires "
                         "--backend distributed")
    if backend == "distributed" and args.workers == 0 and args.queue is None:
        raise SystemExit("--workers 0 needs --queue DIR: external workers "
                         "must be able to find the task queue")
    if backend != "distributed" and args.queue is not None:
        raise SystemExit("--queue only applies to --backend distributed")
    if backend == "serial" and args.chunk_size is not None:
        raise SystemExit("--chunk-size only applies to --backend pool or "
                         "distributed (the serial sweep is not chunked)")
    if args.granularity == "task" and backend == "serial":
        raise SystemExit("--granularity task needs --backend pool or "
                         "distributed (a serial sweep has no task backend "
                         "to ship whole tasks to)")
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume needs --checkpoint PATH (the journal to "
                         "resume from)")
    if args.fault_model is not None and args.error_class is not None:
        raise SystemExit("--fault-model and --error-class are mutually "
                         "exclusive: the fault model plans the sweep")
    if args.seed is not None and args.sample is None:
        raise SystemExit("--seed only applies with --sample N (a full sweep "
                         "is not randomised)")
    _validated_queue(args.queue)
    return backend


def _build_analyze_strategy(args: argparse.Namespace, backend: str,
                            golden, expected):
    """Build the execution strategy for the chosen backend.

    Returns ``(strategy, cache_statistics_fn)`` — the statistics getter is
    read after the run, once the backend has aggregated its counters.
    """
    from .parallel import CacheSpec, QuerySpec

    cache_spec = (CacheSpec.shared(args.shared_cache)
                  if args.shared_cache else None)
    query_spec = QuerySpec.predefined(args.query, golden_output=golden,
                                      expected_value=expected)
    whole_tasks = args.granularity == "task"
    if backend == "serial":
        cache = (cache_spec or CacheSpec()).build()
        strategy = SerialExecutionStrategy(result_cache=cache)
        statistics = lambda: cache.statistics  # noqa: E731
    elif backend == "pool":
        from .parallel import (ParallelConfig, ParallelExecutionStrategy,
                               ParallelTaskStrategy)
        config = ParallelConfig(workers=args.workers,
                                chunk_size=args.chunk_size,
                                cache=cache_spec)
        strategy = (ParallelTaskStrategy(query_spec, config) if whole_tasks
                    else ParallelExecutionStrategy(query_spec, config))
        statistics = lambda: strategy.cache_statistics  # noqa: E731
    else:
        from .distributed import (DistributedConfig,
                                  DistributedExecutionStrategy,
                                  DistributedTaskStrategy)
        config = DistributedConfig(workers=args.workers,
                                   chunk_size=args.chunk_size,
                                   queue_dir=args.queue,
                                   lease_seconds=args.lease_seconds,
                                   cache=cache_spec)
        strategy = (DistributedTaskStrategy(query_spec, config) if whole_tasks
                    else DistributedExecutionStrategy(query_spec, config))
        statistics = lambda: strategy.cache_statistics  # noqa: E731
    if whole_tasks:
        # Whole search tasks flow through the TaskExecutionStrategy seam;
        # the sweep adapter flattens their results back into the identical
        # per-injection CampaignResult.
        from .core.tasks import TaskSweepStrategy
        strategy = TaskSweepStrategy(strategy, chunk_size=args.chunk_size,
                                     workers_hint=max(1, args.workers))

    if args.checkpoint is not None:
        from .distributed import CheckpointingStrategy
        checkpointing = CheckpointingStrategy(strategy, args.checkpoint,
                                              resume=args.resume)
        return checkpointing, statistics
    return strategy, statistics


def _command_analyze(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    golden = workload.golden_output()
    expected = args.expected
    if expected is None:
        printed = [item for item in golden if isinstance(item, int)]
        expected = printed[-1] if printed else None
    query = generate_query(args.query, golden_output=golden,
                           expected_value=expected)
    backend = _resolve_backend(args)
    try:
        model = fault_model(args.fault_model) if args.fault_model else None
    except ValueError as exc:
        # Mirror validate_queue_locator: one readable line, no traceback.
        raise SystemExit(str(exc)) from None
    if args.burst_k is not None:
        if model is None or model.name != "burst":
            raise SystemExit("--burst-k only applies to --fault-model burst")
        if args.burst_k < 2:
            raise SystemExit(f"--burst-k must be >= 2 (a burst is K "
                             f"simultaneous faults), got {args.burst_k}")
        model = dataclasses.replace(model, k=args.burst_k)

    # Telemetry is configured before the campaign is built so every span —
    # including campaign.run itself — lands under one trace, and the trace
    # context is captured into the specs shipped to workers.  All telemetry
    # notices go to stderr: campaign stdout must stay byte-identical with
    # and without --telemetry.
    telemetry_on = (args.telemetry is not None
                    or args.telemetry_prometheus is not None)
    if telemetry_on:
        from . import obs as _obs
        from .obs import JsonlEventSink
        sink = (JsonlEventSink(args.telemetry)
                if args.telemetry is not None else None)
        _obs.configure(sink=sink, component="coordinator")

    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        error_class=error_class(args.error_class or "register"),
        fault_model=model,
        execution_config=ExecutionConfig(
            max_steps=args.max_steps,
            control_fork_domain=args.control_fork_domain),
        max_solutions_per_injection=args.max_solutions,
        max_states_per_injection=args.max_states,
        deduplicate_states=not args.no_dedup,
        isa=workload.isa)

    injections = campaign.plan_injections(sample=args.sample, seed=args.seed)
    planned = len(injections)
    if args.max_injections is not None:
        injections = injections[:args.max_injections]
    print(f"program        : {workload.program.describe()}")
    if workload.isa is not None:
        # Printed only when an ISA was selected, so default MIPS-path output
        # stays byte-identical to pre-registry campaigns.
        print(f"isa            : {workload.isa}")
    print(f"golden output  : {list(golden)}")
    if model is not None:
        print(f"fault model    : {model.name}")
        if model.name == "burst":
            print(f"burst k        : {model.k}")
    else:
        print(f"error class    : {args.error_class or 'register'}")
    if args.sample is not None:
        # A --sample larger than the fault space clamps (with a warning
        # from the sampler); report the size actually swept.
        print(f"sampled        : {min(args.sample, planned)} (seed "
              f"{0 if args.seed is None else args.seed})")
    print(f"query          : {query.description}")
    print(f"injections     : {len(injections)}")
    if backend != "serial":
        print(f"backend        : {backend}")
    if args.workers > 1:
        print(f"workers        : {args.workers}")

    def report_progress(done: int, total: int, last) -> None:
        print(f"  [{done}/{total}] {last.injection.label()}"
              + ("" if last.activated else " (not activated)"),
              file=sys.stderr)

    progress = report_progress if args.progress else None

    strategy, cache_statistics_fn = _build_analyze_strategy(
        args, backend, golden, expected)
    store = None
    if args.results is not None:
        from .results import RecordingStrategy, SqliteResultStore
        store = SqliteResultStore(args.results)
        meta = {
            "workload": workload.name,
            "program": workload.program.name,
            "query": query.description,
            "fault_model": (model.name if model is not None
                            else f"error-class:{args.error_class or 'register'}"),
            "isa": workload.isa,
            "backend": backend,
            "workers": args.workers,
            "granularity": args.granularity,
            "sample": args.sample,
            "max_injections": args.max_injections,
        }
        # --checkpoint needs the wrapped backend to retain its result list
        # (the journal merge zips pending and fresh results, and resumed
        # results never pass through the streaming sink); without it the
        # coordinator streams and retains nothing.
        strategy = RecordingStrategy(strategy, store, meta=meta,
                                     golden_output=golden,
                                     retain=args.checkpoint is not None)
    result = campaign.run(query, injections=injections, progress=progress,
                          strategy=strategy)
    if store is not None:
        print(f"results store: {args.results} "
              f"(campaign {strategy.campaign_id})", file=sys.stderr)
    if args.checkpoint is not None:
        skipped = getattr(strategy, "skipped", 0)
        print(f"checkpoint: {args.checkpoint}"
              + (f" ({skipped} injections resumed from the journal)"
                 if args.resume else ""),
              file=sys.stderr)
    cache_statistics = cache_statistics_fn()
    if args.progress and cache_statistics is not None:
        print(f"search-result cache: {cache_statistics.describe()}",
              file=sys.stderr)
    print()
    print(result.describe())
    print()
    summary = campaign_outcome_summary(result, golden)
    print("solution outcome kinds:", {k: v for k, v in summary.items() if v})

    witnesses = witnesses_from_campaign(workload.program, result, golden)
    if witnesses:
        print()
        print(format_witnesses(witnesses, limit=args.witnesses))
    if result.total_solutions == 0 and result.all_completed:
        print("\nno errors of this class evade detection for the explored "
              "injections: the program is resilient (within the search bounds).")
    if args.compare_concrete:
        from .concrete import run_parity_study
        parity = run_parity_study(
            workload.program, injections, golden,
            input_values=workload.default_input,
            memory=workload.data_segment,
            detectors=workload.detectors,
            max_states=args.max_states,
            max_steps=args.max_steps)
        print()
        print("symbolic vs concrete bit-flip parity:")
        print(parity.format_table())
    if store is not None:
        store.close()
    if telemetry_on:
        from . import obs as _obs
        if args.telemetry_prometheus is not None:
            from .obs import render_hub
            with open(args.telemetry_prometheus, "w",
                      encoding="utf-8") as handle:
                handle.write(render_hub(_obs.get()))
        _obs.finalize()
        if args.telemetry is not None:
            print(f"telemetry: {args.telemetry}", file=sys.stderr)
        if args.telemetry_prometheus is not None:
            print(f"telemetry (prometheus): {args.telemetry_prometheus}",
                  file=sys.stderr)
    return 0


def _command_concrete(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    golden = workload.golden_output()
    expected_values = args.expected_values
    if expected_values is None:
        expected_values = [item for item in golden if isinstance(item, int)][-1:]

    campaign = ConcreteCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        labeler=printed_value_labeler(expected_values=tuple(expected_values)),
        outcome_labels=tuple(str(v) for v in expected_values)
        + ("other", "crash", "hang", "detected"),
        max_steps=args.max_steps)
    injections = campaign.enumerate_injections()
    if args.max_injections is not None:
        injections = injections[:args.max_injections]
    print(f"program        : {workload.program.describe()}")
    print(f"golden output  : {list(golden)}")
    print(f"injections     : {len(injections)} "
          f"({campaign.planned_experiments(injections)} experiments)")
    result = campaign.run(injections=injections, keep_experiments=False)
    print()
    print(result.describe())
    return 0


def _command_broker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .net import BrokerServer, parse_listen_address

    try:
        host, port = parse_listen_address(args.listen)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    server = BrokerServer(host=host, port=port,
                          lease_seconds=args.lease_seconds,
                          connection_timeout=args.connection_timeout)

    signal.signal(signal.SIGTERM, lambda signum, frame: server.request_stop())
    signal.signal(signal.SIGINT, lambda signum, frame: server.request_stop())
    print(f"broker listening on {server.url}", flush=True)

    heartbeat_stop = threading.Event()
    heartbeat_thread = None
    if args.telemetry is not None:
        from . import obs as _obs
        from .obs import JsonlEventSink
        hub = _obs.configure(sink=JsonlEventSink(args.telemetry),
                             component="broker")

        def emit_heartbeat() -> None:
            stats = server.stats_snapshot()
            for key in ("pending", "claimed", "results", "total"):
                if stats[key] is not None:  # total is None pre-manifest
                    hub.gauge(f"broker.{key}", stats[key])
            hub.event("broker.heartbeat", pending=stats["pending"],
                      claimed=stats["claimed"], results=stats["results"],
                      total=stats["total"],
                      uptime_seconds=stats["uptime_seconds"],
                      ops=stats["ops"], leases=len(stats["leases"]))

        def heartbeat_loop() -> None:
            emit_heartbeat()  # one immediately, so short runs still record
            while not heartbeat_stop.wait(args.heartbeat_seconds):
                emit_heartbeat()

        heartbeat_thread = threading.Thread(target=heartbeat_loop,
                                            daemon=True,
                                            name="broker-heartbeat")
        heartbeat_thread.start()
    try:
        server.serve_forever()
    finally:
        heartbeat_stop.set()
        if heartbeat_thread is not None:
            heartbeat_thread.join(timeout=2.0)
            from . import obs as _obs
            emit_heartbeat()  # final queue-depth gauges for the metrics record
            _obs.finalize()
        server.close()
    print("broker stopped")
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .distributed import WorkerConfig, run_worker

    _validated_queue(args.queue)
    config = WorkerConfig(queue_dir=args.queue,
                          poll_interval=args.poll_interval,
                          max_idle_seconds=args.max_idle,
                          manifest_timeout=args.manifest_timeout,
                          lease_seconds=args.lease_seconds)

    def report_task(index: int, injections: int) -> None:
        if args.progress:
            print(f"  task {index}: {injections} injections done",
                  file=sys.stderr)

    # Graceful shutdown: on SIGTERM the worker finishes (and publishes) the
    # unit it is executing, releases any unstarted claim back to the queue,
    # and exits — nothing is left to recover via lease expiry.
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())

    if args.telemetry is not None:
        import os

        from . import obs as _obs
        from .obs import JsonlEventSink
        # run_worker replaces the hub when it initialises the campaign
        # context, but captures and re-attaches this sink (see run_worker).
        _obs.configure(sink=JsonlEventSink(args.telemetry),
                       component=f"worker-{os.getpid()}")
    try:
        executed = run_worker(config, on_task=report_task,
                              should_stop=stop.is_set)
    except (TimeoutError, ConnectionError) as exc:
        # No manifest in time, or a tcp:// broker that stayed unreachable
        # through the client's retries: a clean message, not a traceback.
        raise SystemExit(f"worker gave up: {exc}") from exc
    finally:
        if args.telemetry is not None:
            from . import obs as _obs
            _obs.finalize()
    if stop.is_set():
        print(f"worker stopped on SIGTERM: {executed} tasks executed")
    else:
        print(f"worker drained: {executed} tasks executed")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    import os

    if args.results is None and args.telemetry is None:
        raise SystemExit("repro report needs --results PATH and/or "
                         "--telemetry PATH")
    if args.parity and args.results is None:
        raise SystemExit("--parity needs --results PATH (the warehouse "
                         "holding the symbolic and bitflip campaigns)")
    if args.telemetry is not None:
        from .obs import read_events
        from .obs.report import format_telemetry_report
        if not os.path.exists(args.telemetry):
            raise SystemExit(f"telemetry log not found: {args.telemetry}")
        print(format_telemetry_report(read_events(args.telemetry)))
        if args.results is not None:
            print()
    if args.results is None:
        return 0

    from .results import SqliteResultStore, format_parity_report, format_report

    if not os.path.exists(args.results):
        raise SystemExit(f"results store not found: {args.results}")
    store = SqliteResultStore(args.results)
    try:
        if args.parity:
            print(format_parity_report(store))
        else:
            print(format_report(store, campaign_id=args.campaign))
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc)) from exc
    finally:
        store.close()
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    if not args.queue.startswith("tcp://"):
        raise SystemExit("repro top needs --queue tcp://HOST:PORT (the live "
                         "view polls a running 'repro broker')")
    return run_top(args.queue, interval=args.interval,
                   iterations=args.iterations, once=args.once,
                   prometheus=args.prometheus)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "analyze":
        return _command_analyze(args)
    if args.command == "concrete":
        return _command_concrete(args)
    if args.command == "broker":
        return _command_broker(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "bench":
        from .results.bench import run_bench
        return run_bench(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
