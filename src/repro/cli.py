"""Command-line interface for the SymPLFIED reproduction.

The CLI mirrors how the paper's tool is used: feed it a program (SymPLFIED
assembly, a minic source file, a MIPS file or the name of a bundled
workload), optionally a detector file in the ``det(...)`` format, pick an
error class and an outcome query, and it either runs the program, runs a
concrete fault-injection campaign, or runs the symbolic campaign and reports
every error that evades detection.

Examples::

    python -m repro run --workload factorial --input 5
    python -m repro analyze --workload factorial --error-class register \
        --query err-output --max-injections 20
    python -m repro concrete --workload tcas --max-injections 50
    python -m repro analyze --program prog.asm --detectors dets.txt \
        --query wrong-final-value --expected 1
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import campaign_outcome_summary, format_witnesses
from .concrete import ConcreteCampaign, printed_value_labeler
from .core import SearchResultCache, SymbolicCampaign, witnesses_from_campaign
from .core.campaign import SerialExecutionStrategy
from .detectors import DetectorSet, EMPTY_DETECTORS
from .errors import STANDARD_ERROR_CLASSES, error_class
from .frontend import generate_query, translate_mips
from .isa import assemble
from .lang import compile_source
from .machine import ExecutionConfig, run_concrete
from .programs import WORKLOADS, load_workload
from .programs.base import Workload


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be an integer, got {text!r}") \
            from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _load_detectors(path: Optional[str]) -> DetectorSet:
    if path is None:
        return EMPTY_DETECTORS
    with open(path, "r", encoding="utf-8") as handle:
        return DetectorSet.parse(handle.read())


def _load_workload(args: argparse.Namespace) -> Workload:
    """Build the workload from --workload / --program / --minic / --mips."""
    sources = [name for name in ("workload", "program", "minic", "mips")
               if getattr(args, name, None)]
    if len(sources) != 1:
        raise SystemExit("exactly one of --workload, --program, --minic, --mips "
                         "must be given")
    detectors = _load_detectors(getattr(args, "detectors", None))
    input_values = tuple(getattr(args, "input", ()) or ())

    if args.workload:
        workload = load_workload(args.workload)
        if input_values:
            workload.default_input = input_values
        if len(detectors):
            workload.detectors = detectors
        return workload

    if args.program:
        with open(args.program, "r", encoding="utf-8") as handle:
            program = assemble(handle.read(), name=args.program)
        return Workload(name=args.program, program=program, detectors=detectors,
                        default_input=input_values,
                        recommended_max_steps=args.max_steps)

    if args.minic:
        with open(args.minic, "r", encoding="utf-8") as handle:
            compiled = compile_source(handle.read(), name=args.minic)
        return Workload(name=args.minic, program=compiled.program,
                        data_segment=compiled.initial_memory(),
                        detectors=detectors, default_input=input_values,
                        compiled=compiled, recommended_max_steps=args.max_steps)

    with open(args.mips, "r", encoding="utf-8") as handle:
        program = translate_mips(handle.read(), name=args.mips)
    return Workload(name=args.mips, program=program, detectors=detectors,
                    default_input=input_values,
                    recommended_max_steps=args.max_steps)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        help="name of a bundled workload")
    parser.add_argument("--program", help="path to a SymPLFIED assembly file")
    parser.add_argument("--minic", help="path to a minic source file")
    parser.add_argument("--mips", help="path to a MIPS assembly file")
    parser.add_argument("--detectors", help="path to a det(...) detector file")
    parser.add_argument("--input", type=int, nargs="*", default=None,
                        help="input values for the program's read instructions")
    parser.add_argument("--max-steps", type=int, default=20_000,
                        help="watchdog bound on executed instructions")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SymPLFIED: symbolic program-level fault injection "
                    "and error detection (reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a program concretely (no faults) and print its output")
    _add_common_arguments(run_parser)

    analyze = subparsers.add_parser(
        "analyze", help="symbolic fault-injection campaign (the SymPLFIED analysis)")
    _add_common_arguments(analyze)
    analyze.add_argument("--error-class", default="register",
                         choices=sorted(STANDARD_ERROR_CLASSES),
                         help="hardware error class to sweep")
    analyze.add_argument("--query", default="undetected-failure",
                         choices=("err-output", "incorrect-output",
                                  "wrong-final-value", "crash", "hang",
                                  "undetected-failure"),
                         help="outcome to search for")
    analyze.add_argument("--expected", type=int, default=None,
                         help="expected final printed value (wrong-final-value query)")
    analyze.add_argument("--max-injections", type=int, default=None,
                         help="cap on the number of injections swept")
    analyze.add_argument("--max-solutions", type=int, default=10,
                         help="per-injection cap on reported errors")
    analyze.add_argument("--max-states", type=int, default=20_000,
                         help="per-injection cap on explored states")
    analyze.add_argument("--control-fork-domain", default="labels",
                         choices=("labels", "targets", "all", "exception_only"))
    analyze.add_argument("--witnesses", type=int, default=3,
                         help="number of witnesses to print")
    analyze.add_argument("--workers", type=_positive_int, default=1,
                         help="worker processes for the injection sweep "
                              "(1 = serial, the paper's single-host run)")
    analyze.add_argument("--chunk-size", type=_positive_int, default=None,
                         help="injections per parallel work unit "
                              "(default: a few chunks per worker)")
    analyze.add_argument("--progress", action="store_true",
                         help="report sweep progress on stderr")

    concrete = subparsers.add_parser(
        "concrete", help="concrete (SimpleScalar-style) fault-injection campaign")
    _add_common_arguments(concrete)
    concrete.add_argument("--max-injections", type=int, default=None)
    concrete.add_argument("--expected-values", type=int, nargs="*", default=None,
                          help="printed values that get their own outcome row")

    return parser


def _command_run(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    state = workload.initial_state()
    run_concrete(workload.program, state, workload.detectors,
                 max_steps=args.max_steps)
    print(f"program  : {workload.program.describe()}")
    print(f"status   : {state.status.value}"
          + (f" ({state.exception})" if state.exception else ""))
    print(f"steps    : {state.steps}")
    print(f"output   : {list(state.output_values())}")
    return 0 if state.status.value == "halted" else 1


def _command_analyze(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    golden = workload.golden_output()
    expected = args.expected
    if expected is None:
        printed = [item for item in golden if isinstance(item, int)]
        expected = printed[-1] if printed else None
    query = generate_query(args.query, golden_output=golden,
                           expected_value=expected)

    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        error_class=error_class(args.error_class),
        execution_config=ExecutionConfig(
            max_steps=args.max_steps,
            control_fork_domain=args.control_fork_domain),
        max_solutions_per_injection=args.max_solutions,
        max_states_per_injection=args.max_states)

    injections = campaign.enumerate_injections()
    if args.max_injections is not None:
        injections = injections[:args.max_injections]
    print(f"program        : {workload.program.describe()}")
    print(f"golden output  : {list(golden)}")
    print(f"error class    : {args.error_class}")
    print(f"query          : {query.description}")
    print(f"injections     : {len(injections)}")
    if args.workers > 1:
        print(f"workers        : {args.workers}")

    def report_progress(done: int, total: int, last) -> None:
        print(f"  [{done}/{total}] {last.injection.label()}"
              + ("" if last.activated else " (not activated)"),
              file=sys.stderr)

    progress = report_progress if args.progress else None

    cache_statistics = None
    if args.workers > 1:
        from .parallel import ParallelConfig, ParallelExecutionStrategy, QuerySpec
        query_spec = QuerySpec.predefined(args.query, golden_output=golden,
                                          expected_value=expected)
        strategy = ParallelExecutionStrategy(
            query_spec, ParallelConfig(workers=args.workers,
                                       chunk_size=args.chunk_size))
        result = campaign.run(query, injections=injections,
                              progress=progress, strategy=strategy)
        cache_statistics = strategy.cache_statistics
    else:
        # Thread one result cache through the serial sweep so convergent
        # injection points are searched only once (workers keep their own).
        cache = SearchResultCache()
        result = campaign.run(query, injections=injections, progress=progress,
                              strategy=SerialExecutionStrategy(result_cache=cache))
        cache_statistics = cache.statistics
    if args.progress and cache_statistics is not None:
        print(f"search-result cache: {cache_statistics.describe()}",
              file=sys.stderr)
    print()
    print(result.describe())
    print()
    summary = campaign_outcome_summary(result, golden)
    print("solution outcome kinds:", {k: v for k, v in summary.items() if v})

    witnesses = witnesses_from_campaign(workload.program, result, golden)
    if witnesses:
        print()
        print(format_witnesses(witnesses, limit=args.witnesses))
    if result.total_solutions == 0 and all(r.completed for r in result.results):
        print("\nno errors of this class evade detection for the explored "
              "injections: the program is resilient (within the search bounds).")
    return 0


def _command_concrete(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    golden = workload.golden_output()
    expected_values = args.expected_values
    if expected_values is None:
        expected_values = [item for item in golden if isinstance(item, int)][-1:]

    campaign = ConcreteCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        labeler=printed_value_labeler(expected_values=tuple(expected_values)),
        outcome_labels=tuple(str(v) for v in expected_values)
        + ("other", "crash", "hang", "detected"),
        max_steps=args.max_steps)
    injections = campaign.enumerate_injections()
    if args.max_injections is not None:
        injections = injections[:args.max_injections]
    print(f"program        : {workload.program.describe()}")
    print(f"golden output  : {list(golden)}")
    print(f"injections     : {len(injections)} "
          f"({campaign.planned_experiments(injections)} experiments)")
    result = campaign.run(injections=injections, keep_experiments=False)
    print()
    print(result.describe())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "analyze":
        return _command_analyze(args)
    if args.command == "concrete":
        return _command_concrete(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
