"""The replace workload (paper Section 6.4, Table 3).

``replace`` is the largest of the Siemens benchmark programs: it reads a
pattern, a substitution string and input lines, and writes each line with
every match of the pattern replaced by the substitution.  The pattern
language is the classic *Software Tools* subset: literal characters, ``?``
(any character), ``%`` (beginning of line), ``$`` (end of line), ``[...]``
character classes with ``-`` ranges and ``^`` negation, ``*`` closure and
``@`` escapes; ``&`` in the substitution stands for the matched text.

The minic source below keeps the structure and function decomposition of the
Siemens C program — ``makepat``, ``getccl``, ``dodash``, ``amatch``,
``omatch``, ``locate``, ``patsize``, ``addstr``, ``esc``, ``stclose``,
``makesub``, ``subline``, ``putsub``, ``change``, ``getline`` — because the
paper's experiment (Table 3 and the dodash example scenario) targets exactly
those functions.  C's by-reference index parameters (``int *i``) become the
module-level cells ``g_i``/``g_j``/``g_esc_i``/``g_om_i``, which is the only
structural deviation (minic has no pointers to scalars).

I/O encoding: the machine's ``read`` instruction yields integers, so strings
are streams of character codes.  The input stream is::

    <pattern arg chars> 0 <substitution arg chars> 0 { <line chars> 10 }* 0

and the program's output is the stream of character codes it would have
written to stdout.  :func:`encode_input` and :func:`decode_output` convert
between Python strings and this encoding.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..lang import CompiledProgram, compile_source
from .base import Workload


REPLACE_SOURCE = """
// Siemens "replace", re-expressed in minic.

const MAXSTR = 100;
const MAXPAT = 100;

const ENDSTR = 0;
const ESCAPE = '@';
const CLOSURE = '*';
const BOL = '%';
const EOL = '$';
const ANY = '?';
const CCL = '[';
const CCLEND = ']';
const NEGATE = '^';
const NCCL = '!';
const LITCHAR = 'c';
const DITTO = -1;
const DASH = '-';

const TAB = 9;
const NEWLINE = 10;

const CLOSIZE = 1;

// by-reference index parameters of the original C code
int g_i;
int g_j;
int g_esc_i;
int g_om_i;

// string buffers
int lin[100];
int pat_arg[100];
int sub_arg[100];
int pat[100];
int sub[100];

int is_alnum(int c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int in_set_2(int c) {
    return (c == BOL) || (c == EOL) || (c == CLOSURE);
}

int in_pat_set(int c) {
    return (c == LITCHAR) || (c == BOL) || (c == EOL) || (c == ANY) ||
           (c == CCL) || (c == NCCL) || (c == CLOSURE);
}

int addstr(int c, int outset, int maxset) {
    // appends c at outset[g_j]; advances g_j; reports overflow
    int result;
    if (g_j >= maxset) {
        result = 0;
    } else {
        outset[g_j] = c;
        g_j = g_j + 1;
        result = 1;
    }
    return result;
}

int esc(int s, int i) {
    // interpret an @-escape at s[i]; leaves the index of the consumed
    // character in g_esc_i (the caller resumes from g_esc_i + 1)
    int result;
    g_esc_i = i;
    if (s[i] != ESCAPE) {
        result = s[i];
    } else {
        if (s[i + 1] == ENDSTR) {
            result = ESCAPE;
        } else {
            g_esc_i = i + 1;
            if (s[g_esc_i] == 'n') {
                result = NEWLINE;
            } else {
                if (s[g_esc_i] == 't') {
                    result = TAB;
                } else {
                    result = s[g_esc_i];
                }
            }
        }
    }
    return result;
}

void dodash(int delim, int src, int dest, int maxset) {
    // expand character ranges inside a class; uses g_i (src) and g_j (dest)
    int k;
    int junk;
    while ((src[g_i] != delim) && (src[g_i] != ENDSTR)) {
        if (src[g_i] == ESCAPE) {
            junk = addstr(esc(src, g_i), dest, maxset);
            g_i = g_esc_i;
        } else {
            if (src[g_i] != DASH) {
                junk = addstr(src[g_i], dest, maxset);
            } else {
                if (g_j <= 1 || src[g_i + 1] == ENDSTR) {
                    junk = addstr(DASH, dest, maxset);
                } else {
                    if (is_alnum(src[g_i - 1]) && is_alnum(src[g_i + 1]) &&
                        src[g_i - 1] <= src[g_i + 1]) {
                        k = src[g_i - 1] + 1;
                        while (k <= src[g_i + 1]) {
                            junk = addstr(k, dest, maxset);
                            k = k + 1;
                        }
                        g_i = g_i + 1;
                    } else {
                        junk = addstr(DASH, dest, maxset);
                    }
                }
            }
        }
        g_i = g_i + 1;
    }
}

int getccl(int arg, int patbuf) {
    // translate a [...] class starting at arg[g_i]; returns true on success
    int jstart;
    int junk;
    g_i = g_i + 1;               // skip over the '['
    if (arg[g_i] == NEGATE) {
        junk = addstr(NCCL, patbuf, MAXPAT);
        g_i = g_i + 1;
    } else {
        junk = addstr(CCL, patbuf, MAXPAT);
    }
    jstart = g_j;
    junk = addstr(0, patbuf, MAXPAT);   // leave room for the class size
    dodash(CCLEND, arg, patbuf, MAXPAT);
    patbuf[jstart] = g_j - jstart - 1;
    return arg[g_i] == CCLEND;
}

void stclose(int patbuf, int lastj) {
    // insert the CLOSURE marker before the last pattern element
    int jp;
    jp = g_j - 1;
    while (jp >= lastj) {
        patbuf[jp + CLOSIZE] = patbuf[jp];
        jp = jp - 1;
    }
    g_j = g_j + CLOSIZE;
    patbuf[lastj] = CLOSURE;
}

int makepat(int arg, int start, int delim, int patbuf) {
    // build the encoded pattern; returns the index of the delimiter, or 0
    int result;
    int lastj;
    int lj;
    int done;
    int junk;
    int getres;
    g_j = 0;
    g_i = start;
    lastj = 0;
    done = 0;
    while ((!done) && (arg[g_i] != delim) && (arg[g_i] != ENDSTR)) {
        lj = g_j;
        if (arg[g_i] == ANY) {
            junk = addstr(ANY, patbuf, MAXPAT);
        } else {
            if ((arg[g_i] == BOL) && (g_i == start)) {
                junk = addstr(BOL, patbuf, MAXPAT);
            } else {
                if ((arg[g_i] == EOL) && (arg[g_i + 1] == delim)) {
                    junk = addstr(EOL, patbuf, MAXPAT);
                } else {
                    if (arg[g_i] == CCL) {
                        getres = getccl(arg, patbuf);
                        done = getres == 0;
                    } else {
                        if ((arg[g_i] == CLOSURE) && (g_i > start)) {
                            lj = lastj;
                            if (in_set_2(patbuf[lj])) {
                                done = 1;
                            } else {
                                stclose(patbuf, lastj);
                            }
                        } else {
                            junk = addstr(LITCHAR, patbuf, MAXPAT);
                            junk = addstr(esc(arg, g_i), patbuf, MAXPAT);
                            g_i = g_esc_i;
                        }
                    }
                }
            }
        }
        lastj = lj;
        if (!done) {
            g_i = g_i + 1;
        }
    }
    junk = addstr(ENDSTR, patbuf, MAXPAT);
    if (done || (arg[g_i] != delim)) {
        result = 0;
    } else {
        if (!junk) {
            result = 0;
        } else {
            result = g_i;
        }
    }
    return result;
}

int getpat(int arg, int patbuf) {
    return makepat(arg, 0, ENDSTR, patbuf) > 0;
}

int makesub(int arg, int from, int delim, int subbuf) {
    // build the encoded substitution; returns the delimiter index, or 0
    int result;
    int i;
    int junk;
    result = 0;
    i = from;
    g_j = 0;
    while ((arg[i] != delim) && (arg[i] != ENDSTR)) {
        if (arg[i] == '&') {
            junk = addstr(DITTO, subbuf, MAXPAT);
        } else {
            junk = addstr(esc(arg, i), subbuf, MAXPAT);
            i = g_esc_i;
        }
        i = i + 1;
    }
    if (arg[i] != delim) {
        result = 0;
    } else {
        junk = addstr(ENDSTR, subbuf, MAXPAT);
        if (!junk) {
            result = 0;
        } else {
            result = i;
        }
    }
    return result;
}

int getsub(int arg, int subbuf) {
    return makesub(arg, 0, ENDSTR, subbuf) > 0;
}

int locate(int c, int patbuf, int offset) {
    // is character c in the class whose size is at patbuf[offset]?
    int i;
    int flag;
    flag = 0;
    i = offset + patbuf[offset];
    while (i > offset) {
        if (c == patbuf[i]) {
            flag = 1;
            i = offset;
        } else {
            i = i - 1;
        }
    }
    return flag;
}

int patsize(int patbuf, int n) {
    // size of the pattern entry starting at index n
    int size;
    size = 0;
    if (!in_pat_set(patbuf[n])) {
        prints("in patsize: can't happen");
        print(-99);
    } else {
        if (patbuf[n] == LITCHAR) {
            size = 2;
        } else {
            if ((patbuf[n] == BOL) || (patbuf[n] == EOL) || (patbuf[n] == ANY)) {
                size = 1;
            } else {
                if ((patbuf[n] == CCL) || (patbuf[n] == NCCL)) {
                    size = patbuf[n + 1] + 2;
                } else {
                    size = CLOSIZE;   // CLOSURE
                }
            }
        }
    }
    return size;
}

int omatch(int linbuf, int patbuf, int j) {
    // match a single pattern element at lin[g_om_i]; advances g_om_i
    int advance;
    int result;
    advance = -1;
    if (linbuf[g_om_i] == ENDSTR) {
        result = 0;
    } else {
        if (!in_pat_set(patbuf[j])) {
            prints("in omatch: can't happen");
            print(-99);
            result = 0;
        } else {
            if (patbuf[j] == LITCHAR) {
                if (linbuf[g_om_i] == patbuf[j + 1]) {
                    advance = 1;
                }
            } else {
                if (patbuf[j] == BOL) {
                    if (g_om_i == 0) {
                        advance = 0;
                    }
                } else {
                    if (patbuf[j] == ANY) {
                        if (linbuf[g_om_i] != NEWLINE) {
                            advance = 1;
                        }
                    } else {
                        if (patbuf[j] == EOL) {
                            if (linbuf[g_om_i] == NEWLINE) {
                                advance = 0;
                            }
                        } else {
                            if (patbuf[j] == CCL) {
                                if (locate(linbuf[g_om_i], patbuf, j + 1)) {
                                    advance = 1;
                                }
                            } else {
                                // NCCL
                                if ((linbuf[g_om_i] != NEWLINE) &&
                                    (!locate(linbuf[g_om_i], patbuf, j + 1))) {
                                    advance = 1;
                                }
                            }
                        }
                    }
                }
            }
            if (advance >= 0) {
                g_om_i = g_om_i + advance;
                result = 1;
            } else {
                result = 0;
            }
        }
    }
    return result;
}

int amatch(int linbuf, int offset, int patbuf, int j) {
    // match the pattern starting at patbuf[j] against lin from offset;
    // returns the index just past the match, or -1
    int i;
    int k;
    int result;
    int done;
    done = 0;
    while ((!done) && (patbuf[j] != ENDSTR)) {
        if (patbuf[j] == CLOSURE) {
            j = j + patsize(patbuf, j);
            i = offset;
            // match as many occurrences as possible
            while ((!done) && (linbuf[i] != ENDSTR)) {
                g_om_i = i;
                result = omatch(linbuf, patbuf, j);
                i = g_om_i;
                if (!result) {
                    done = 1;
                }
            }
            // i points at the character that made us fail; backtrack
            done = 0;
            k = -1;
            while ((!done) && (i >= offset)) {
                k = amatch(linbuf, i, patbuf, j + patsize(patbuf, j));
                if (k >= 0) {
                    done = 1;
                } else {
                    i = i - 1;
                }
            }
            offset = k;
            done = 1;
        } else {
            g_om_i = offset;
            result = omatch(linbuf, patbuf, j);
            offset = g_om_i;
            if (!result) {
                offset = -1;
                done = 1;
            } else {
                j = j + patsize(patbuf, j);
            }
        }
    }
    return offset;
}

void putsub(int linbuf, int s1, int s2, int subbuf) {
    // write the substitution, expanding & into lin[s1..s2)
    int i;
    int j;
    i = 0;
    while (subbuf[i] != ENDSTR) {
        if (subbuf[i] == DITTO) {
            j = s1;
            while (j < s2) {
                print(linbuf[j]);
                j = j + 1;
            }
        } else {
            print(subbuf[i]);
        }
        i = i + 1;
    }
}

void subline(int linbuf, int patbuf, int subbuf) {
    int i;
    int lastm;
    int m;
    lastm = -1;
    i = 0;
    while (linbuf[i] != ENDSTR) {
        m = amatch(linbuf, i, patbuf, 0);
        if ((m >= 0) && (lastm != m)) {
            putsub(linbuf, i, m, subbuf);
            lastm = m;
        }
        if ((m == -1) || (m == i)) {
            print(linbuf[i]);
            i = i + 1;
        } else {
            i = m;
        }
    }
}

int getline(int s, int maxsize) {
    // read one newline-terminated line; a leading ENDSTR means end of input
    int c;
    int i;
    int result;
    i = 0;
    read(c);
    if (c == ENDSTR) {
        result = 0;
    } else {
        while ((c != NEWLINE) && (i < maxsize - 2)) {
            s[i] = c;
            i = i + 1;
            read(c);
        }
        if (c == NEWLINE) {
            s[i] = c;
            i = i + 1;
        }
        s[i] = ENDSTR;
        result = 1;
    }
    return result;
}

void read_arg(int s) {
    // read a NUL-terminated command-line argument from the input stream
    int c;
    int i;
    i = 0;
    read(c);
    while ((c != ENDSTR) && (i < MAXSTR - 1)) {
        s[i] = c;
        i = i + 1;
        read(c);
    }
    s[i] = ENDSTR;
}

void change(int patbuf, int subbuf) {
    int result;
    result = getline(lin, MAXSTR);
    while (result) {
        subline(lin, patbuf, subbuf);
        result = getline(lin, MAXSTR);
    }
}

int main() {
    int result;
    read_arg(pat_arg);
    read_arg(sub_arg);
    result = getpat(pat_arg, pat);
    if (!result) {
        prints("change: illegal \\"from\\" pattern");
        return 1;
    }
    result = getsub(sub_arg, sub);
    if (!result) {
        prints("change: illegal \\"to\\" string");
        return 1;
    }
    change(pat, sub);
    return 0;
}
"""

#: Default experiment used by the Section 6.4 reproduction: replace every
#: character in the class ``[0-9]`` with ``#`` in a small input line.
DEFAULT_PATTERN = "[0-9]"
DEFAULT_SUBSTITUTION = "#"
DEFAULT_LINES = ("ab12cd9",)


def encode_input(pattern: str = DEFAULT_PATTERN,
                 substitution: str = DEFAULT_SUBSTITUTION,
                 lines: Sequence[str] = DEFAULT_LINES) -> Tuple[int, ...]:
    """Encode (pattern, substitution, lines) into the program's input stream."""
    stream: List[int] = []
    stream.extend(ord(ch) for ch in pattern)
    stream.append(0)
    stream.extend(ord(ch) for ch in substitution)
    stream.append(0)
    for line in lines:
        body = line.rstrip("\n")
        stream.extend(ord(ch) for ch in body)
        stream.append(10)
    stream.append(0)
    return tuple(stream)


def decode_output(output: Sequence) -> str:
    """Decode the program's printed character codes back into text.

    Non-integer items (``prints`` banners, the symbolic ``err``) are rendered
    inline so that test failures remain readable.
    """
    pieces: List[str] = []
    for item in output:
        if isinstance(item, int):
            pieces.append(chr(item) if 0 <= item < 0x110000 else f"<{item}>")
        else:
            pieces.append(f"<{item}>")
    return "".join(pieces)


def compile_replace() -> CompiledProgram:
    """Compile the replace minic source."""
    return compile_source(REPLACE_SOURCE, name="replace")


def replace_workload(pattern: str = DEFAULT_PATTERN,
                     substitution: str = DEFAULT_SUBSTITUTION,
                     lines: Sequence[str] = DEFAULT_LINES) -> Workload:
    """The replace workload with a configurable experiment."""
    compiled = compile_replace()
    return Workload(
        name="replace",
        program=compiled.program,
        description="Siemens replace: pattern match and substitute",
        data_segment=compiled.initial_memory(),
        default_input=encode_input(pattern, substitution, lines),
        compiled=compiled,
        recommended_max_steps=60_000,
    )


def replace_campaign(fault_model=None, kind: str = "incorrect-output",
                     **campaign_options):
    """A ready-to-run replace campaign, parametrized by fault model.

    Returns ``(SymbolicCampaign, SearchQuery)``; see :mod:`repro.faults`
    for the model registry.
    """
    return replace_workload().campaign(kind=kind, fault_model=fault_model,
                                       **campaign_options)


# --------------------------------------------------------------------------
# Pure-Python oracle (a direct port of the same algorithm), used by the
# differential and property-based tests.
# --------------------------------------------------------------------------

_ENDSTR = "\0"
_ESCAPE, _CLOSURE, _BOL, _EOL, _ANY = "@", "*", "%", "$", "?"
_CCL, _CCLEND, _NEGATE, _NCCL, _LITCHAR = "[", "]", "^", "!", "c"
_DASH, _NEWLINE, _TAB = "-", "\n", "\t"
_DITTO = -1


def _reference_makepat(arg: str):
    """Python port of makepat/getccl/dodash/stclose; returns the encoded
    pattern (a list of str/int) or None if the pattern is illegal."""
    pat: List = []
    i = 0
    start = 0
    lastj = 0
    done = False

    def esc_at(s: str, i: int) -> Tuple[str, int]:
        if i >= len(s) or s[i] != _ESCAPE:
            return (s[i] if i < len(s) else _ENDSTR), i
        if i + 1 >= len(s):
            return _ESCAPE, i
        nxt = s[i + 1]
        if nxt == "n":
            return _NEWLINE, i + 1
        if nxt == "t":
            return _TAB, i + 1
        return nxt, i + 1

    def dodash(delim: str, src: str, i: int) -> int:
        while i < len(src) and src[i] != delim:
            if src[i] == _ESCAPE:
                ch, i = esc_at(src, i)
                pat.append(ch)
            elif src[i] != _DASH:
                pat.append(src[i])
            elif len(pat) <= jstart + 1 or i + 1 >= len(src):
                pat.append(_DASH)
            elif (src[i - 1].isalnum() and src[i + 1].isalnum()
                  and src[i - 1] <= src[i + 1]):
                for code in range(ord(src[i - 1]) + 1, ord(src[i + 1]) + 1):
                    pat.append(chr(code))
                i += 1
            else:
                pat.append(_DASH)
            i += 1
        return i

    while not done and i < len(arg):
        lj = len(pat)
        if arg[i] == _ANY:
            pat.append(_ANY)
        elif arg[i] == _BOL and i == start:
            pat.append(_BOL)
        elif arg[i] == _EOL and i + 1 == len(arg):
            pat.append(_EOL)
        elif arg[i] == _CCL:
            i += 1
            if i < len(arg) and arg[i] == _NEGATE:
                pat.append(_NCCL)
                i += 1
            else:
                pat.append(_CCL)
            jstart = len(pat)
            pat.append(0)
            i = dodash(_CCLEND, arg, i)
            pat[jstart] = len(pat) - jstart - 1
            if i >= len(arg) or arg[i] != _CCLEND:
                done = True
        elif arg[i] == _CLOSURE and i > start:
            lj = lastj
            if pat[lj] in (_BOL, _EOL, _CLOSURE):
                done = True
            else:
                pat.insert(lastj, _CLOSURE)
        else:
            pat.append(_LITCHAR)
            ch, i = esc_at(arg, i)
            pat.append(ch)
        lastj = lj
        if not done:
            i += 1
    if done:
        return None
    return pat


def _reference_makesub(arg: str):
    sub: List = []
    i = 0
    while i < len(arg):
        if arg[i] == "&":
            sub.append(_DITTO)
        else:
            if arg[i] == _ESCAPE and i + 1 < len(arg):
                nxt = arg[i + 1]
                sub.append(_NEWLINE if nxt == "n" else _TAB if nxt == "t" else nxt)
                i += 1
            else:
                sub.append(arg[i])
        i += 1
    return sub


def _patsize(pat, n: int) -> int:
    entry = pat[n]
    if entry == _LITCHAR:
        return 2
    if entry in (_BOL, _EOL, _ANY):
        return 1
    if entry in (_CCL, _NCCL):
        return pat[n + 1] + 2
    return 1  # CLOSURE


def _locate(c: str, pat, offset: int) -> bool:
    i = offset + pat[offset]
    while i > offset:
        if c == pat[i]:
            return True
        i -= 1
    return False


def _omatch(lin: str, i: int, pat, j: int) -> Tuple[bool, int]:
    if i >= len(lin) or lin[i] == _ENDSTR:
        return False, i
    advance = -1
    entry = pat[j]
    if entry == _LITCHAR:
        if lin[i] == pat[j + 1]:
            advance = 1
    elif entry == _BOL:
        if i == 0:
            advance = 0
    elif entry == _ANY:
        if lin[i] != _NEWLINE:
            advance = 1
    elif entry == _EOL:
        if lin[i] == _NEWLINE:
            advance = 0
    elif entry == _CCL:
        if _locate(lin[i], pat, j + 1):
            advance = 1
    else:  # NCCL
        if lin[i] != _NEWLINE and not _locate(lin[i], pat, j + 1):
            advance = 1
    if advance >= 0:
        return True, i + advance
    return False, i


def _amatch(lin: str, offset: int, pat, j: int) -> int:
    done = False
    while not done and j < len(pat):
        if pat[j] == _CLOSURE:
            j = j + _patsize(pat, j)
            i = offset
            while not done and i < len(lin) and lin[i] != _ENDSTR:
                matched, i_next = _omatch(lin, i, pat, j)
                if not matched:
                    done = True
                else:
                    i = i_next
            done = False
            k = -1
            while not done and i >= offset:
                k = _amatch(lin, i, pat, j + _patsize(pat, j))
                if k >= 0:
                    done = True
                else:
                    i -= 1
            offset = k
            done = True
        else:
            matched, offset_next = _omatch(lin, offset, pat, j)
            if not matched:
                offset = -1
                done = True
            else:
                offset = offset_next
                j = j + _patsize(pat, j)
    return offset


def reference_replace(pattern: str, substitution: str,
                      lines: Sequence[str]) -> Optional[str]:
    """Pure-Python oracle for the whole replace program.

    Returns the text the program writes, or ``None`` when the pattern or the
    substitution is rejected (matching the program's error path).
    """
    if pattern == "":
        return None
    pat = _reference_makepat(pattern)
    if pat is None:
        return None
    if substitution == "":
        return None
    sub = _reference_makesub(substitution)
    output: List[str] = []
    for raw_line in lines:
        line = raw_line.rstrip("\n") + "\n"
        lastm = -1
        i = 0
        while i < len(line) and line[i] != _ENDSTR:
            m = _amatch(line, i, pat, 0)
            if m >= 0 and lastm != m:
                for item in sub:
                    if item == _DITTO:
                        output.append(line[i:m])
                    else:
                        output.append(item)
                lastm = m
            if m == -1 or m == i:
                output.append(line[i])
                i += 1
            else:
                i = m
    return "".join(output)
