"""Common workload abstraction shared by the example programs.

A :class:`Workload` bundles everything needed to run one of the paper's
evaluation programs: the assembled/compiled program, its loader-initialised
data segment, its detectors, a default input and convenience helpers for
golden runs and initial machine states.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from ..detectors import DetectorSet, EMPTY_DETECTORS
from ..isa.program import Program
from ..machine.executor import run_concrete
from ..machine.state import MachineState, Status, initial_state


@dataclass
class Workload:
    """One ready-to-analyse program plus its execution context."""

    name: str
    program: Program
    description: str = ""
    data_segment: Dict[int, int] = field(default_factory=dict)
    detectors: DetectorSet = field(default_factory=lambda: EMPTY_DETECTORS)
    default_input: Tuple[int, ...] = ()
    compiled: Optional[object] = None  # CompiledProgram when built by minic
    recommended_max_steps: int = 20_000
    #: ISA frontend the program was retargeted through (``None`` = the native
    #: SymPLFIED build).  Carried into campaigns, specs and checkpoint headers.
    isa: Optional[str] = None

    def initial_state(self, input_values: Optional[Sequence[int]] = None
                      ) -> MachineState:
        """A fresh initial machine state (loader-initialised data segment)."""
        values = self.default_input if input_values is None else tuple(input_values)
        return initial_state(input_values=values, memory=dict(self.data_segment))

    def golden_run(self, input_values: Optional[Sequence[int]] = None
                   ) -> MachineState:
        """Run the workload without errors and return the final state."""
        state = self.initial_state(input_values)
        run_concrete(self.program, state, self.detectors,
                     max_steps=self.recommended_max_steps)
        return state

    def golden_output(self, input_values: Optional[Sequence[int]] = None) -> Tuple:
        """The error-free output; raises if the golden run does not halt."""
        state = self.golden_run(input_values)
        if state.status is not Status.HALTED:
            raise RuntimeError(
                f"{self.name}: golden run ended with {state.status.value} "
                f"({state.exception})")
        return state.output_values()

    def retargeted(self, isa: str) -> "Workload":
        """This workload rebuilt through the named ISA frontend.

        The program is round-tripped through the frontend's assembly; for the
        built-in frontends the instruction sequence and label table are
        structurally identical (injection addresses stay meaningful), only the
        provenance changes.  Raises :class:`ValueError` for unknown names.
        """
        from ..isa.registry import get_frontend

        frontend = get_frontend(isa)
        return replace(self, program=frontend.retarget(self.program),
                       isa=frontend.name)

    def campaign(self, kind: str = "err-output",
                 fault_model=None,
                 error_category: Optional[str] = None,
                 expected_value: Optional[int] = None,
                 execution_config=None,
                 **campaign_options):
        """A ready-to-run ``(SymbolicCampaign, SearchQuery)`` for this workload.

        *fault_model* — a :class:`~repro.faults.models.FaultModel` or a
        registry name (``"register"``, ``"memory"``, ``"control"``,
        ``"operand"``) — plans the sweep through the pluggable fault
        subsystem.

        .. deprecated:: passing *error_category* explicitly is deprecated;
           the legacy category sweep is subsumed by the fault-model registry
           (``fault_model="register"`` etc.).  Omitting both keeps the
           historical register sweep.
        """
        from ..frontend.querygen import generate_campaign

        return generate_campaign(self, kind=kind,
                                 error_category=error_category,
                                 fault_model=fault_model,
                                 expected_value=expected_value,
                                 execution_config=execution_config,
                                 **campaign_options)

    def describe(self) -> str:
        return (f"{self.name}: {len(self.program)} instructions, "
                f"{len(self.data_segment)} data words, "
                f"{len(self.detectors)} detectors — {self.description}")
