"""Small assembly kernels used by tests and the Table 1 error-category bench.

Each kernel is a tiny program exercising one corner of the machine/error
model: arithmetic chains, memory traffic, branches, calls and I/O.  They are
deliberately small so that exhaustive symbolic exploration of every error
class finishes quickly, which is what the Table 1 benchmark needs.
"""

from __future__ import annotations

from typing import Tuple

from ..isa.parser import assemble
from .base import Workload


#: Sums the N numbers following the count on the input stream.
SUM_INPUT_SOURCE = """
        read $1               -- number of values
        ori $2 $0 #0          -- accumulator
loop:   setgt $3 $1 $0        -- while count > 0
        beq $3 0 done
        read $4
        add $2 $2 $4
        subi $1 $1 #1
        beq $0 0 loop
done:   prints "sum = "
        print $2
        halt
"""

#: Writes the first N triangular numbers into memory, then reads them back.
MEMORY_WALK_SOURCE = """
        read $1               -- N
        ori $2 $0 #0          -- index
        ori $3 $0 #0          -- running total
        ori $7 $0 #2000       -- base address of the table
fill:   setge $4 $2 $1
        bne $4 0 readback
        add $3 $3 $2
        add $5 $7 $2
        sti $3 $5 0           -- table[index] = total
        addi $2 $2 #1
        beq $0 0 fill
readback:
        ori $2 $0 #0
        ori $6 $0 #0
sumup:  setge $4 $2 $1
        bne $4 0 report
        add $5 $7 $2
        ldi $8 $5 0
        add $6 $6 $8
        addi $2 $2 #1
        beq $0 0 sumup
report: print $6
        halt
"""

#: Computes max(a, b) through a call, exercising jal/jr and the $31 register.
CALL_MAX_SOURCE = """
        read $4               -- a
        read $5               -- b
        jal max
        print $2
        halt
max:    setgt $6 $4 $5
        beq $6 0 second
        mov $2 $4
        jr $31
second: mov $2 $5
        jr $31
"""

#: Integer division with an explicit divide-by-zero guard.
SAFE_DIVIDE_SOURCE = """
        read $1               -- dividend
        read $2               -- divisor
        bne $2 0 divide
        prints "divide by zero"
        throw "guarded div-zero"
divide: div $3 $1 $2
        print $3
        halt
"""


def sum_input_workload(count: int = 4,
                       values: Tuple[int, ...] = (3, 5, 7, 9)) -> Workload:
    program = assemble(SUM_INPUT_SOURCE, name="sum_input")
    return Workload(name="sum_input", program=program,
                    description="sum N values read from the input stream",
                    default_input=(count,) + tuple(values),
                    recommended_max_steps=1_000)


def memory_walk_workload(n: int = 6) -> Workload:
    program = assemble(MEMORY_WALK_SOURCE, name="memory_walk")
    return Workload(name="memory_walk", program=program,
                    description="store/load walk over a small table",
                    default_input=(n,),
                    recommended_max_steps=2_000)


def call_max_workload(a: int = 17, b: int = 9) -> Workload:
    program = assemble(CALL_MAX_SOURCE, name="call_max")
    return Workload(name="call_max", program=program,
                    description="max(a, b) through a function call (jal/jr)",
                    default_input=(a, b),
                    recommended_max_steps=200)


def safe_divide_workload(dividend: int = 42, divisor: int = 6) -> Workload:
    program = assemble(SAFE_DIVIDE_SOURCE, name="safe_divide")
    return Workload(name="safe_divide", program=program,
                    description="guarded integer division",
                    default_input=(dividend, divisor),
                    recommended_max_steps=200)
