"""Workloads evaluated in the paper plus small auxiliary kernels."""

from typing import Callable, Dict, Optional

from .base import Workload
from .factorial import (FACTORIAL_DETECTORS_SOURCE, FACTORIAL_SOURCE,
                        FACTORIAL_WITH_DETECTORS_SOURCE, factorial_campaign,
                        factorial_workload,
                        factorial_with_detectors_workload,
                        loop_counter_injection_pc)
from .tcas import (DOWNWARD_ADVISORY_INPUT, TCAS_INPUT_NAMES, TCAS_SOURCE,
                   UPWARD_ADVISORY_INPUT, compile_tcas, make_input,
                   reference_alt_sep_test, tcas_campaign, tcas_workload)
from .replace import (DEFAULT_LINES, DEFAULT_PATTERN, DEFAULT_SUBSTITUTION,
                      REPLACE_SOURCE, compile_replace, decode_output,
                      encode_input, reference_replace, replace_campaign,
                      replace_workload)
from .kernels import (call_max_workload, memory_walk_workload,
                      safe_divide_workload, sum_input_workload)


#: Registry of workload factories, keyed by name (used by examples/benchmarks).
WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "factorial": factorial_workload,
    "factorial_with_detectors": factorial_with_detectors_workload,
    "tcas": tcas_workload,
    "replace": replace_workload,
    "sum_input": sum_input_workload,
    "memory_walk": memory_walk_workload,
    "call_max": call_max_workload,
    "safe_divide": safe_divide_workload,
}


def load_workload(name: str, isa: Optional[str] = None) -> Workload:
    """Build a workload from the registry by name.

    *isa* retargets the workload through a registered ISA frontend
    (:func:`repro.isa.registry.get_frontend`); raises :class:`ValueError`
    for unknown workload or frontend names.
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; available: "
                         f"{sorted(WORKLOADS)}") from None
    workload = factory()
    if isa is not None:
        workload = workload.retargeted(isa)
    return workload


__all__ = [
    "Workload", "WORKLOADS", "load_workload",
    "FACTORIAL_DETECTORS_SOURCE", "FACTORIAL_SOURCE",
    "FACTORIAL_WITH_DETECTORS_SOURCE", "factorial_campaign",
    "factorial_workload",
    "factorial_with_detectors_workload", "loop_counter_injection_pc",
    "DOWNWARD_ADVISORY_INPUT", "TCAS_INPUT_NAMES", "TCAS_SOURCE",
    "UPWARD_ADVISORY_INPUT", "compile_tcas", "make_input",
    "reference_alt_sep_test", "tcas_campaign", "tcas_workload",
    "DEFAULT_LINES", "DEFAULT_PATTERN", "DEFAULT_SUBSTITUTION",
    "REPLACE_SOURCE", "compile_replace", "decode_output", "encode_input",
    "reference_replace", "replace_campaign", "replace_workload",
    "call_max_workload", "memory_walk_workload", "safe_divide_workload",
    "sum_input_workload",
]
