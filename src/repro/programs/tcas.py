"""The tcas workload (paper Section 6.1-6.3).

tcas is the Siemens-suite version of the Traffic alert and Collision
Avoidance System advisory logic: given twelve input parameters describing the
own and other aircraft, it prints a single number — 0 (unresolved), 1 (upward
advisory) or 2 (downward advisory).

The paper compiles the ~140-line C program to MIPS and translates it to the
SymPLFIED assembly language; here the same logic is expressed in minic and
compiled to the same ISA (see DESIGN.md for the substitution argument).  The
default input is chosen, as in the paper, so that the error-free run prints 1
(an upward advisory); the catastrophic scenario is any undetected error that
makes the program print 2 instead.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..lang import CompiledProgram, compile_source
from .base import Workload


TCAS_SOURCE = """
// Siemens tcas, re-expressed in minic.

const OLEV = 600;          // in feet/minute
const MAXALTDIFF = 600;    // max altitude difference in feet
const MINSEP = 300;        // min separation in feet
const NOZCROSS = 100;      // in feet

const NO_INTENT = 0;
const DO_NOT_CLIMB = 1;
const DO_NOT_DESCEND = 2;

const TCAS_TA = 1;
const OTHER = 2;

const UNRESOLVED = 0;
const UPWARD_RA = 1;
const DOWNWARD_RA = 2;

int Cur_Vertical_Sep;
int High_Confidence;
int Two_of_Three_Reports_Valid;

int Own_Tracked_Alt;
int Own_Tracked_Alt_Rate;
int Other_Tracked_Alt;

int Alt_Layer_Value;               // 0, 1, 2, 3
int Positive_RA_Alt_Thresh[4];

int Up_Separation;
int Down_Separation;

// state variables
int Other_RAC;                     // NO_INTENT, DO_NOT_CLIMB, DO_NOT_DESCEND
int Other_Capability;              // TCAS_TA, OTHER
int Climb_Inhibit;                 // true / false

void initialize() {
    Positive_RA_Alt_Thresh[0] = 400;
    Positive_RA_Alt_Thresh[1] = 500;
    Positive_RA_Alt_Thresh[2] = 640;
    Positive_RA_Alt_Thresh[3] = 740;
}

int ALIM() {
    return Positive_RA_Alt_Thresh[Alt_Layer_Value];
}

int Inhibit_Biased_Climb() {
    int bias;
    if (Climb_Inhibit) {
        bias = Up_Separation + NOZCROSS;
    } else {
        bias = Up_Separation;
    }
    return bias;
}

int Own_Below_Threat() {
    return Own_Tracked_Alt < Other_Tracked_Alt;
}

int Own_Above_Threat() {
    return Other_Tracked_Alt < Own_Tracked_Alt;
}

int Non_Crossing_Biased_Climb() {
    int upward_preferred;
    int result;

    upward_preferred = Inhibit_Biased_Climb() > Down_Separation;
    if (upward_preferred) {
        result = !Own_Below_Threat() ||
                 (Own_Below_Threat() && !(Down_Separation >= ALIM()));
    } else {
        result = Own_Above_Threat() &&
                 (Cur_Vertical_Sep >= MINSEP) &&
                 (Up_Separation >= ALIM());
    }
    return result;
}

int Non_Crossing_Biased_Descend() {
    int upward_preferred;
    int result;

    upward_preferred = Inhibit_Biased_Climb() > Down_Separation;
    if (upward_preferred) {
        result = Own_Below_Threat() &&
                 (Cur_Vertical_Sep >= MINSEP) &&
                 (Down_Separation >= ALIM());
    } else {
        result = !Own_Above_Threat() ||
                 (Own_Above_Threat() && (Up_Separation >= ALIM()));
    }
    return result;
}

int alt_sep_test() {
    int enabled;
    int tcas_equipped;
    int intent_not_known;
    int need_upward_RA;
    int need_downward_RA;
    int alt_sep;

    enabled = High_Confidence &&
              (Own_Tracked_Alt_Rate <= OLEV) &&
              (Cur_Vertical_Sep > MAXALTDIFF);
    tcas_equipped = Other_Capability == TCAS_TA;
    intent_not_known = Two_of_Three_Reports_Valid && (Other_RAC == NO_INTENT);

    alt_sep = UNRESOLVED;

    if (enabled && ((tcas_equipped && intent_not_known) || !tcas_equipped)) {
        need_upward_RA = Non_Crossing_Biased_Climb() && Own_Below_Threat();
        need_downward_RA = Non_Crossing_Biased_Descend() && Own_Above_Threat();
        if (need_upward_RA && need_downward_RA) {
            alt_sep = UNRESOLVED;
        } else {
            if (need_upward_RA) {
                alt_sep = UPWARD_RA;
            } else {
                if (need_downward_RA) {
                    alt_sep = DOWNWARD_RA;
                } else {
                    alt_sep = UNRESOLVED;
                }
            }
        }
    }
    return alt_sep;
}

int main() {
    read(Cur_Vertical_Sep);
    read(High_Confidence);
    read(Two_of_Three_Reports_Valid);
    read(Own_Tracked_Alt);
    read(Own_Tracked_Alt_Rate);
    read(Other_Tracked_Alt);
    read(Alt_Layer_Value);
    read(Up_Separation);
    read(Down_Separation);
    read(Other_RAC);
    read(Other_Capability);
    read(Climb_Inhibit);

    initialize();
    print(alt_sep_test());
    return 0;
}
"""

#: Names of the twelve inputs, in the order main() reads them.
TCAS_INPUT_NAMES: Tuple[str, ...] = (
    "Cur_Vertical_Sep", "High_Confidence", "Two_of_Three_Reports_Valid",
    "Own_Tracked_Alt", "Own_Tracked_Alt_Rate", "Other_Tracked_Alt",
    "Alt_Layer_Value", "Up_Separation", "Down_Separation",
    "Other_RAC", "Other_Capability", "Climb_Inhibit",
)

#: Default input: the error-free run produces an upward advisory (prints 1),
#: which is the experimental setup of Section 6.1.
UPWARD_ADVISORY_INPUT: Tuple[int, ...] = (
    700,   # Cur_Vertical_Sep  (> MAXALTDIFF)
    1,     # High_Confidence
    1,     # Two_of_Three_Reports_Valid
    500,   # Own_Tracked_Alt
    400,   # Own_Tracked_Alt_Rate (<= OLEV)
    800,   # Other_Tracked_Alt (own aircraft is below the threat)
    1,     # Alt_Layer_Value -> ALIM() = 500
    700,   # Up_Separation
    300,   # Down_Separation (< ALIM, so a non-crossing climb is preferred)
    0,     # Other_RAC = NO_INTENT
    1,     # Other_Capability = TCAS_TA
    0,     # Climb_Inhibit
)

#: An input whose error-free output is a downward advisory (prints 2);
#: used by tests to cover the symmetric case.
DOWNWARD_ADVISORY_INPUT: Tuple[int, ...] = (
    700,   # Cur_Vertical_Sep
    1,     # High_Confidence
    1,     # Two_of_Three_Reports_Valid
    900,   # Own_Tracked_Alt (own aircraft is above the threat)
    400,   # Own_Tracked_Alt_Rate
    600,   # Other_Tracked_Alt
    1,     # Alt_Layer_Value -> ALIM() = 500
    600,   # Up_Separation (>= ALIM, descend is non-crossing)
    700,   # Down_Separation (> Up_Separation, so downward is preferred)
    0,     # Other_RAC
    1,     # Other_Capability
    0,     # Climb_Inhibit
)


def compile_tcas() -> CompiledProgram:
    """Compile the tcas minic source."""
    return compile_source(TCAS_SOURCE, name="tcas")


def tcas_workload(input_values: Sequence[int] = UPWARD_ADVISORY_INPUT) -> Workload:
    """The tcas workload with the paper's upward-advisory input by default."""
    compiled = compile_tcas()
    return Workload(
        name="tcas",
        program=compiled.program,
        description="Siemens tcas advisory logic (prints 0, 1 or 2)",
        data_segment=compiled.initial_memory(),
        default_input=tuple(input_values),
        compiled=compiled,
        recommended_max_steps=5_000,
    )


def tcas_campaign(fault_model=None, kind: str = "wrong-final-value",
                  **campaign_options):
    """A ready-to-run tcas campaign, parametrized by fault model.

    ``tcas_campaign("memory")`` corrupts the loader-initialised data
    segment cells feeding the advisory logic's loads; see
    :mod:`repro.faults` for the model registry.  Returns
    ``(SymbolicCampaign, SearchQuery)``.
    """
    return tcas_workload().campaign(kind=kind, fault_model=fault_model,
                                    **campaign_options)


def make_input(**overrides: int) -> Tuple[int, ...]:
    """Build a tcas input vector starting from the upward-advisory default."""
    values = dict(zip(TCAS_INPUT_NAMES, UPWARD_ADVISORY_INPUT))
    for name, value in overrides.items():
        if name not in values:
            raise KeyError(f"unknown tcas input {name!r}")
        values[name] = value
    return tuple(values[name] for name in TCAS_INPUT_NAMES)


def reference_alt_sep_test(inputs: Sequence[int]) -> int:
    """Pure-Python oracle for the tcas logic (used by differential tests)."""
    (cur_vertical_sep, high_confidence, two_of_three, own_alt, own_rate,
     other_alt, alt_layer, up_sep, down_sep, other_rac, other_cap,
     climb_inhibit) = inputs
    thresh = (400, 500, 640, 740)

    def alim() -> int:
        return thresh[alt_layer]

    def inhibit_biased_climb() -> int:
        return up_sep + 100 if climb_inhibit else up_sep

    def own_below_threat() -> bool:
        return own_alt < other_alt

    def own_above_threat() -> bool:
        return other_alt < own_alt

    def non_crossing_biased_climb() -> bool:
        if inhibit_biased_climb() > down_sep:
            return (not own_below_threat()) or (
                own_below_threat() and not (down_sep >= alim()))
        return own_above_threat() and cur_vertical_sep >= 300 and up_sep >= alim()

    def non_crossing_biased_descend() -> bool:
        if inhibit_biased_climb() > down_sep:
            return own_below_threat() and cur_vertical_sep >= 300 and down_sep >= alim()
        return (not own_above_threat()) or (
            own_above_threat() and up_sep >= alim())

    enabled = bool(high_confidence) and own_rate <= 600 and cur_vertical_sep > 600
    tcas_equipped = other_cap == 1
    intent_not_known = bool(two_of_three) and other_rac == 0

    alt_sep = 0
    if enabled and ((tcas_equipped and intent_not_known) or not tcas_equipped):
        need_up = non_crossing_biased_climb() and own_below_threat()
        need_down = non_crossing_biased_descend() and own_above_threat()
        if need_up and need_down:
            alt_sep = 0
        elif need_up:
            alt_sep = 1
        elif need_down:
            alt_sep = 2
        else:
            alt_sep = 0
    return alt_sep
