"""The factorial example programs of the paper (Figures 2 and 3).

``factorial_workload`` is the unprotected program of Figure 2;
``factorial_with_detectors_workload`` is the detector-augmented program of
Figure 3, with the two ``check`` sites and the supporting ``mov`` that copies
the previous product so the second detector can validate the multiplication.
"""

from __future__ import annotations


from ..detectors import DetectorSet
from ..isa.parser import assemble
from ..lang.peephole import peephole_enabled_by_env, peephole_program
from .base import Workload


#: Figure 2: compute the factorial of the number read from input.
FACTORIAL_SOURCE = """
        ori $2 $0 #1          -- 1: initial product p = 1
        read $1               -- 2: read i from input
        mov $3 $1             -- 3
        ori $4 $0 #1          -- 4: for comparison purposes
loop:   setgt $5 $3 $4        -- 5: start of loop
        beq $5 0 exit         -- 6: loop condition: $3 > $4
        mult $2 $2 $3         -- 7: p = p * i
        subi $3 $3 #1         -- 8: i = i - 1
        beq $0 0 loop         -- 9: loop backedge
exit:   prints "Factorial = " -- 10
        print $2              -- 11
        halt                  -- 12
"""

#: Figure 3: the same program augmented with two error detectors.
#: Detector 1 checks the loop bound; detector 2 checks the multiplication
#: using the previous product saved in $6 by the supporting ``mov``.
FACTORIAL_WITH_DETECTORS_SOURCE = """
        ori $2 $0 #1          -- 1: initial product p = 1
        read $1               -- 2: read i from input
        mov $3 $1             -- 3
        ori $4 $0 #1          -- 4: for comparison purposes
loop:   setgt $5 $3 $4        -- 5: start of loop
        beq $5 0 exit         -- 6
        check 1               -- 7: check ($4 < $3)
        mov $6 $2             -- 8: save previous product
        mult $2 $2 $3         -- 9: p = p * i
        check 2               -- 10: check ($2 >= $6 * $1)  [see note below]
        subi $3 $3 #1         -- 11: i = i - 1
        beq $0 0 loop         -- 12: loop backedge
exit:   prints "Factorial = " -- 13
        print $2              -- 14
        halt                  -- 15
"""

#: The detector specifications for Figure 3, in the paper's det(...) format.
#:
#: Detector 1 fires when the loop counter ($3) is not greater than the bound
#: ($4): ``check ($4 < $3)`` -> target $3 must be ``>`` $4.
#:
#: Detector 2 guards the multiplication using the previous product saved in
#: $6.  The paper writes the check as ``$2 >= $6 * $1`` (with $1 the value
#: read from input); taken literally that check also fires on the *error-free*
#: run from the second iteration onward (the product grows by the current
#: counter, not by the original input), so we use the corrected invariant
#: ``$2 >= $6 * 2``: inside the loop the counter is at least 2, hence the new
#: product must be at least twice the previous one.  The detection semantics
#: exercised by the Section 4.2 example are identical.
FACTORIAL_DETECTORS_SOURCE = """
det(1, $(3), >,  $(4))
det(2, $(2), >=, $(6) * (2))
"""


def factorial_workload(default_input: int = 5) -> Workload:
    """The Figure 2 program, reading *default_input* by default."""
    program = assemble(FACTORIAL_SOURCE, name="factorial")
    if peephole_enabled_by_env():
        # Same switch as the minic workloads: the assembled program runs
        # through the (conservative, currently no-op here) peephole pass so
        # the ``--expect-identical`` peephole variant exercises it too.
        program, _stats = peephole_program(program)
    return Workload(
        name="factorial",
        program=program,
        description="Figure 2: factorial of the input (no detectors)",
        default_input=(default_input,),
        recommended_max_steps=500,
    )


def factorial_with_detectors_workload(default_input: int = 5) -> Workload:
    """The Figure 3 program with its two detectors."""
    program = assemble(FACTORIAL_WITH_DETECTORS_SOURCE,
                       name="factorial_with_detectors")
    detectors = DetectorSet.parse(FACTORIAL_DETECTORS_SOURCE)
    return Workload(
        name="factorial_with_detectors",
        program=program,
        description="Figure 3: factorial protected by two CHECK detectors",
        detectors=detectors,
        default_input=(default_input,),
        recommended_max_steps=500,
    )


def factorial_campaign(fault_model=None, kind: str = "err-output",
                       **campaign_options):
    """A ready-to-run factorial campaign, parametrized by fault model.

    ``factorial_campaign("control")`` sweeps corrupted branch targets over
    the Figure 2 program; see :mod:`repro.faults` for the model registry.
    Returns ``(SymbolicCampaign, SearchQuery)``.
    """
    return factorial_workload().campaign(kind=kind, fault_model=fault_model,
                                         **campaign_options)


def loop_counter_injection_pc(workload: Workload) -> int:
    """Code address of the ``subi`` that decrements the loop counter.

    The paper's running example injects the error into register $3 right
    after this instruction (i.e. with the breakpoint on the following one).
    """
    for address, instruction in enumerate(workload.program.code):
        if instruction.opcode == "subi":
            return address
    raise ValueError("factorial program has no subi instruction")
