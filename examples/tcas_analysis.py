#!/usr/bin/env python3
"""The tcas case study (paper Sections 6.1-6.3), end to end.

* compiles the tcas workload and checks the error-free advisory (1 = climb),
* runs a symbolic register-error campaign over the Non_Crossing_Biased_Climb
  function, decomposed into search tasks like the paper's cluster runs,
* extracts the catastrophic witness (the program prints 2 — a *downward*
  advisory — instead of 1) caused by a corrupted return-address register, and
* runs a concrete SimpleScalar-style campaign over the same code region to
  show that value-based injection does not expose the scenario (Table 2).

Run with:  python examples/tcas_analysis.py        (takes a couple of minutes)
Pass --quick to sweep only the return-address injections.
"""

import argparse

from repro.analysis import compare_symbolic_concrete
from repro.concrete import ConcreteCampaign, printed_value_labeler
from repro.constraints import Location
from repro.core import (SymbolicCampaign, TaskRunner, Witness,
                        decompose_by_code_section, printed_value_other_than)
from repro.errors import RegisterFileError
from repro.machine import ExecutionConfig
from repro.programs import tcas_workload


def build_campaign(workload):
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=3_000,
                                         control_fork_domain="labels",
                                         max_control_forks=2_048,
                                         max_memory_forks=4),
        max_solutions_per_injection=10,
        max_states_per_injection=20_000)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="only sweep injections into the return-address register")
    parser.add_argument("--tasks", type=int, default=10,
                        help="number of search tasks for the decomposition")
    args = parser.parse_args()

    workload = tcas_workload()
    golden = workload.golden_output()
    print(f"tcas compiled to {len(workload.program)} instructions; "
          f"error-free advisory = {golden[0]} (1 = upward advisory)\n")

    campaign = build_campaign(workload)
    start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
    injections = campaign.enumerate_injections(pcs=range(start, end))
    if args.quick:
        injections = [i for i in injections if i.target == Location.register(31)]
    print(f"sweeping {len(injections)} register injections inside "
          f"Non_Crossing_Biased_Climb (code addresses {start}..{end})")

    query = printed_value_other_than(1)
    tasks = decompose_by_code_section(injections, num_tasks=args.tasks)
    runner = TaskRunner(campaign, max_errors_per_task=10, wall_clock_per_task=120.0)
    report = runner.run(tasks, query,
                        progress=lambda done, total, result: print(
                            f"  task {done}/{total}: "
                            f"{result.errors_found} errors, "
                            f"{result.elapsed_seconds:.1f}s"))
    print()
    print(report.describe())
    print()

    catastrophic = []
    for injection, solution in report.solutions():
        printed = solution.state.printed_integers()
        if printed and printed[-1] == 2:
            catastrophic.append((injection, solution))
    print(f"catastrophic scenarios (advisory flipped from 1 to 2): "
          f"{len(catastrophic)}")
    if catastrophic:
        injection, solution = catastrophic[0]
        witness = Witness(program=workload.program, injection=injection,
                          state=solution.state, golden_output=golden)
        print()
        print(witness.render())
        print()

    print("running the concrete (SimpleScalar-substitute) campaign over the "
          "same code region for comparison ...")
    concrete = ConcreteCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        labeler=printed_value_labeler(expected_values=(0, 1, 2)),
        max_steps=5_000)
    concrete_result = concrete.run(
        injections=concrete.enumerate_injections(pcs=range(start, end)))
    print(concrete_result.describe())
    print()

    # flatten the symbolic task report into a campaign-like container for the
    # comparison helper
    from repro.core.campaign import CampaignResult
    flat = CampaignResult(query_description=query.description)
    for task_result in report.task_results:
        flat.results.extend(task_result.results)
    comparison = compare_symbolic_concrete(
        flat, concrete_result, target_value=2,
        target_description="tcas prints 2 (downward advisory) instead of 1")
    print(comparison.describe())
    if comparison.reproduces_paper_shape:
        print("\n=> reproduces the paper's headline result: only the symbolic "
              "campaign exposes the catastrophic advisory flip.")


if __name__ == "__main__":
    main()
