#!/usr/bin/env python3
"""The replace case study (paper Section 6.4).

replace is the largest Siemens benchmark: it builds an encoded pattern
(makepat / getccl / dodash), then matches and substitutes it in each input
line (amatch / omatch / locate / subline).  The experiment asks SymPLFIED for
single register errors that lead to an *incorrect program output* — for
example the paper's scenario where a corrupted delimiter parameter inside
``dodash`` produces a wrong pattern and the line is emitted without the
substitution.

Run with:  python examples/replace_analysis.py [--pattern "[0-9]"] [--sub "#"]
"""

import argparse

from repro.core import SymbolicCampaign, TaskRunner, decompose_by_code_section, incorrect_output
from repro.errors import RegisterFileError
from repro.machine import ExecutionConfig
from repro.programs import decode_output, replace_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pattern", default="[0-9]")
    parser.add_argument("--sub", default="#")
    parser.add_argument("--line", default="ab12cd9")
    parser.add_argument("--functions", nargs="*",
                        default=["dodash", "getccl"],
                        help="functions whose code region is swept")
    parser.add_argument("--per-function", type=int, default=30,
                        help="max injections per function region")
    args = parser.parse_args()

    workload = replace_workload(pattern=args.pattern, substitution=args.sub,
                                lines=(args.line,))
    golden = workload.golden_output()
    print(f"replace compiled to {len(workload.program)} instructions "
          f"({len(workload.compiled.functions)} functions)")
    print(f"pattern={args.pattern!r} substitution={args.sub!r} line={args.line!r}")
    print(f"error-free output: {decode_output(golden)!r}\n")

    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=40_000,
                                         control_fork_domain="labels",
                                         max_control_forks=64,
                                         max_memory_forks=2),
        max_solutions_per_injection=2,
        max_states_per_injection=40_000)

    injections = []
    for function in args.functions:
        if function not in workload.compiled.functions:
            print(f"  (skipping unknown function {function})")
            continue
        start, end = workload.compiled.function_region(function)
        region = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (8, 9, 10)]
        injections.extend(region[:args.per_function])
        print(f"  {function}: sweeping {min(len(region), args.per_function)} "
              f"injections from code addresses {start}..{end}")
    print()

    query = incorrect_output(golden)
    tasks = decompose_by_code_section(injections, num_tasks=6)
    runner = TaskRunner(campaign, max_errors_per_task=10, wall_clock_per_task=120.0)
    report = runner.run(tasks, query)
    print(report.describe())
    print()

    witnesses = []
    for injection, solution in report.solutions():
        witnesses.append((injection, solution))
    print(f"incorrect-output scenarios found: {len(witnesses)}")
    for injection, solution in witnesses[:3]:
        print(f"\n  injection: {injection.label()}")
        print(f"  corrupted output: {decode_output(solution.state.output_values())!r}")
    if witnesses:
        print("\n(the paper's example: an erroneous pattern is constructed and "
              "the program returns the original string without the substitution)")


if __name__ == "__main__":
    main()
