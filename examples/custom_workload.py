#!/usr/bin/env python3
"""Bring your own workload: minic, MIPS, detectors and error categories.

This example shows the full tool surface for a user-supplied program:

* compile a small minic program (a saturating sensor filter) to the
  SymPLFIED ISA,
* attach detectors written in the paper's ``det(...)`` format,
* use the query generator to sweep the pre-defined error categories of
  Table 1 (register, bus, functional-unit, decode, fetch, control-flow), and
* translate a MIPS snippet with the MIPS front-end and analyse it the same way.

Run with:  python examples/custom_workload.py
"""

from repro.core import SymbolicCampaign
from repro.detectors import DetectorSet
from repro.errors import STANDARD_ERROR_CLASSES
from repro.frontend import generate, translate_mips
from repro.lang import compile_source
from repro.machine import ExecutionConfig
from repro.programs.base import Workload


SENSOR_FILTER = """
// Clamp a stream of sensor samples into [0, 1000] and report the mean.
const LIMIT = 1000;
int samples;
int total;

int clamp(int value) {
    if (value < 0) { return 0; }
    if (value > LIMIT) { return LIMIT; }
    return value;
}

int main() {
    int i;
    int value;
    read(samples);
    i = 0;
    total = 0;
    while (i < samples) {
        read(value);
        total = total + clamp(value);
        i = i + 1;
        check(1);
    }
    print(total / samples);
    return 0;
}
"""

#: Detector 1: the running total may never exceed samples * LIMIT
#: (memory word 1001 is `total`, 1000 is `samples` — see the data segment map).
SENSOR_DETECTORS = """
det(1, *(1001), <=, *(1000) * (1000))
"""

MIPS_SNIPPET = """
# absolute difference of two inputs
        read $a0
        read $a1
        sub  $t0, $a0, $a1
        bgez $t0, done
        sub  $t0, $zero, $t0
done:   print $t0
        halt
"""


def analyse(workload: Workload, label: str) -> None:
    print(f"--- {label}: {len(workload.program)} instructions, "
          f"golden output {workload.golden_output()} ---")
    golden = workload.golden_output()
    for category in ("register", "bus", "functional-unit", "fetch"):
        # The query generator pairs the outcome query with a Table 1 error
        # class; building the campaign from that pair is the supported way
        # to sweep the legacy categories (generate_campaign's error_category=
        # keyword is deprecated in favour of fault models).
        generated = generate("undetected-failure", category,
                             golden_output=golden)
        query = generated.query
        campaign = SymbolicCampaign(
            workload.program,
            input_values=workload.default_input,
            memory=workload.data_segment,
            detectors=workload.detectors,
            error_class=generated.error_class,
            execution_config=ExecutionConfig(
                max_steps=workload.recommended_max_steps,
                control_fork_domain="labels"),
            max_solutions_per_injection=3,
            max_states_per_injection=5_000)
        injections = campaign.enumerate_injections()[:25]
        result = campaign.run(query, injections=injections)
        print(f"  {category:16s}: {result.injections_run} injections, "
              f"{result.injections_with_solutions} expose undetected failures, "
              f"{result.total_solutions} failure states")
    print()


def main() -> None:
    compiled = compile_source(SENSOR_FILTER, name="sensor_filter")
    print("data segment map:", {name: info.address
                                for name, info in compiled.globals.items()})
    sensor = Workload(
        name="sensor_filter",
        program=compiled.program,
        description="saturating sensor filter written in minic",
        data_segment=compiled.initial_memory(),
        detectors=DetectorSet.parse(SENSOR_DETECTORS),
        default_input=(4, 100, 2000, -50, 900),
        recommended_max_steps=3_000,
        compiled=compiled)
    analyse(sensor, "minic sensor filter (with a detector)")

    mips_program = translate_mips(MIPS_SNIPPET, name="absdiff")
    absdiff = Workload(
        name="absdiff",
        program=mips_program,
        description="absolute difference, translated from MIPS",
        default_input=(3, 10),
        recommended_max_steps=200)
    analyse(absdiff, "MIPS snippet translated by the front-end")

    print("available pre-defined error categories:",
          ", ".join(sorted(STANDARD_ERROR_CLASSES)))


if __name__ == "__main__":
    main()
