#!/usr/bin/env python3
"""The pluggable ISA frontend seam: analysing RISC-V programs.

This example shows the cross-architecture axis opened by the ISA frontend
registry (``repro.isa.registry``):

* translate a hand-written RV32IM program (RARS-style ``ecall`` conventions)
  into the SymPLFIED ISA and run a register-fault campaign over it,
* retarget a bundled workload through the ``"rv32im"`` frontend and check
  that the campaign results are identical to the native build — the
  translation is 1:1 and label-preserving, so injection addresses carry over,
* emit the same program as both MIPS and RISC-V assembly from one
  SymPLFIED build.

Run with:  python examples/riscv_frontend.py
"""

from repro.frontend import translate_riscv
from repro.isa.registry import available_isas, get_frontend
from repro.programs import load_workload
from repro.programs.base import Workload


#: Greatest common divisor, written against RARS conventions: services
#: 5 (read int), 1 (print int) and 10 (exit) selected via ``li a7, N``.
GCD_SOURCE = """
main:
        li   a7, 5
        ecall                   # a0 = first input
        mv   t0, a0
        li   a7, 5
        ecall                   # a0 = second input
        mv   t1, a0
loop:
        beqz t1, done
        rem  t2, t0, t1
        mv   t0, t1
        mv   t1, t2
        j    loop
done:
        mv   a0, t0
        li   a7, 1
        ecall                   # print gcd
        li   a7, 10
        ecall                   # exit
"""


def campaign_summary(workload: Workload) -> str:
    campaign, query = workload.campaign(kind="err-output",
                                        fault_model="register",
                                        max_states_per_injection=5_000)
    injections = campaign.plan_injections(sample=8, seed=7)
    result = campaign.run(query, injections=injections)
    return (f"{result.injections_run} injections, "
            f"{result.injections_with_solutions} with err-output solutions, "
            f"{result.total_solutions} solutions")


def main() -> None:
    print("registered ISA frontends:", ", ".join(available_isas()))

    # 1. A native RISC-V program through the rv32im frontend.
    program = translate_riscv(GCD_SOURCE, name="gcd")
    gcd = Workload(name="gcd", program=program,
                   description="Euclid's gcd, translated from RV32IM",
                   default_input=(54, 24), isa="rv32im",
                   recommended_max_steps=1_000)
    print(f"gcd(54, 24) golden output: {gcd.golden_output()}")
    print(f"register-fault campaign  : {campaign_summary(gcd)}")

    # 2. Retarget a bundled workload: the sweep must be identical because
    #    retargeting is structurally the identity on the instruction stream.
    native = load_workload("factorial")
    retargeted = load_workload("factorial", isa="rv32im")
    assert retargeted.program.code == native.program.code
    native_summary = campaign_summary(native)
    retargeted_summary = campaign_summary(retargeted)
    print(f"factorial native build   : {native_summary}")
    print(f"factorial via rv32im     : {retargeted_summary}")
    assert native_summary == retargeted_summary

    # 3. One SymPLFIED program, two assembly spellings.
    for isa in ("mips", "rv32im"):
        listing = get_frontend(isa).emit(native.program).splitlines()
        print(f"-- factorial loop in {isa}:")
        for line in listing[4:9]:
            print("   " + line)


if __name__ == "__main__":
    main()
