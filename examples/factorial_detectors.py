#!/usr/bin/env python3
"""Verifying error detectors: the Figure 3 factorial example (Section 4.2).

The factorial program is augmented with two CHECK detectors.  SymPLFIED is
asked which loop-counter errors still evade them: the search separates
executions where a detector fires (DETECTED) from executions where the error
slips through and corrupts the output, and for the latter it reports the
constraints under which the detectors stay silent — exactly the feedback a
designer needs to strengthen the detectors.

Run with:  python examples/factorial_detectors.py
"""

from repro.constraints import Location
from repro.core import SymbolicCampaign, detected, output_contains_err
from repro.core.traces import witnesses_from_campaign
from repro.errors import Injection
from repro.machine import ExecutionConfig
from repro.programs import (factorial_with_detectors_workload,
                            factorial_workload)


def count_outcomes(workload, injection, query, **campaign_options):
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=300),
        max_solutions_per_injection=100,
        max_states_per_injection=50_000,
        **campaign_options)
    return campaign, campaign.run(query, injections=[injection])


def main() -> None:
    unprotected = factorial_workload()
    protected = factorial_with_detectors_workload()
    print("detectors embedded in the protected program:")
    print(protected.detectors.render())
    print()

    subi_pc = next(i for i, ins in enumerate(protected.program.code)
                   if ins.opcode == "subi")
    injection = Injection(breakpoint_pc=subi_pc + 1, target=Location.register(3),
                          description="loop counter corrupted after decrement")

    unprotected_subi = next(i for i, ins in enumerate(unprotected.program.code)
                            if ins.opcode == "subi")
    unprotected_injection = Injection(breakpoint_pc=unprotected_subi + 1,
                                      target=Location.register(3))

    _, unprotected_missed = count_outcomes(unprotected, unprotected_injection,
                                           output_contains_err())
    campaign, protected_missed = count_outcomes(protected, injection,
                                                output_contains_err())
    _, caught = count_outcomes(protected, injection, detected())

    print("loop-counter error injected after the decrement:")
    print(f"  unprotected program : {unprotected_missed.total_solutions} "
          f"executions print a corrupted value, 0 detections possible")
    print(f"  protected program   : {caught.total_solutions} executions are "
          f"stopped by a detector, {protected_missed.total_solutions} still "
          f"evade detection")
    print()

    witnesses = witnesses_from_campaign(protected.program, protected_missed,
                                        golden_output=protected.golden_output())
    if witnesses:
        print("example witness of an error that evades both detectors:")
        print(witnesses[0].render())
        print()
        print("The constraint set above tells the designer exactly which "
              "corrupted counter values stay undetected (the paper's Section "
              "4.2 conclusion: add a detector for the case where the corrupted "
              "counter is smaller than the original input).")


if __name__ == "__main__":
    main()
