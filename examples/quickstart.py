#!/usr/bin/env python3
"""Quickstart: symbolic fault injection on the paper's factorial example.

This walks through the core SymPLFIED workflow from Section 4.1:

1. assemble a program written in the generic assembly language,
2. run it error-free to obtain the golden output,
3. inject the symbolic ``err`` value into the loop-counter register at every
   loop iteration, and
4. model-check the resulting executions to enumerate every outcome the error
   can cause (the partial products 5, 20, 60, 120, an ``err`` output, or an
   infinite loop cut off by the watchdog).

Run with:  python examples/quickstart.py
"""

from repro.constraints import Location
from repro.core import BoundedModelChecker, halted_normally, output_contains_err
from repro.errors import Injection, prepare_injected_state
from repro.machine import ExecutionConfig, Executor
from repro.programs import factorial_workload, loop_counter_injection_pc


def main() -> None:
    workload = factorial_workload(default_input=5)
    print("program under analysis:")
    print(workload.program.render())

    golden = workload.golden_output()
    print(f"golden (error-free) output: {golden}\n")

    executor = Executor(workload.program, workload.detectors,
                        ExecutionConfig(max_steps=200))
    checker = BoundedModelChecker(executor, max_solutions=100, max_states=50_000)
    subi_pc = loop_counter_injection_pc(workload)

    print("injecting err into the loop counter ($3) after each decrement:")
    printed_values = set()
    err_outputs = 0
    for iteration in range(1, 6):
        injection = Injection(breakpoint_pc=subi_pc + 1,
                              target=Location.register(3),
                              occurrence=iteration,
                              description=f"loop iteration {iteration}")
        injected = prepare_injected_state(workload.program, injection,
                                          workload.initial_state())
        if injected is None:
            break
        result = checker.search_single(injected, halted_normally())
        for solution in result.solutions:
            values = solution.state.printed_integers()
            if values:
                printed_values.add(values[-1])
        err_result = checker.search_single(
            prepare_injected_state(workload.program, injection,
                                   workload.initial_state()),
            output_contains_err())
        err_outputs += len(err_result.solutions)
        print(f"  iteration {iteration}: {len(result.solutions)} halted outcomes, "
              f"{len(err_result.solutions)} outcomes printing err "
              f"({result.statistics.explored_states} states explored)")

    concrete = sorted(v for v in printed_values if isinstance(v, int))
    print(f"\nset of printable results reachable under a single loop-counter error: {concrete}")
    print("(the paper's Section 4.1 analysis predicts the partial products "
          "5, 20, 60, 120 plus err / timeout outcomes)")
    print(f"outcomes that print the err symbol: {err_outputs}")


if __name__ == "__main__":
    main()
